package poa

import (
	"fmt"
	"sort"

	"pardis/internal/cdr"
	"pardis/internal/core"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/nexus"
	"pardis/internal/obs"
	"pardis/internal/pgiop"
	"pardis/internal/rts"
	"pardis/internal/typecode"
)

// Decision kinds broadcast by thread 0.
const (
	decDispatch byte = 1
	decShutdown byte = 2
)

// collectivePhase runs one round of the dispatch agreement in a single
// broadcast: thread 0 encodes the count and every completed invocation's
// decision (in arrival order, shutdown last) into one length-prefixed
// frame and broadcasts it once; every thread — thread 0 included — decodes
// the frame and dispatches identically. One frame instead of 2+K
// sequential broadcast rounds means agreement latency is one tree depth
// regardless of how many invocations completed in the phase.
func (p *POA) collectivePhase() int {
	poaAgreementPhases.Inc()
	// The agreement collective runs before its requests are decoded, so a
	// non-root thread learns which invocations (and TraceIDs) the phase
	// carried only afterwards. The phase interval is captured up front and
	// its spans recorded post hoc, once per traced request.
	var phaseStart int64
	tracing := obs.DefaultTracer.Enabled()
	if tracing {
		phaseStart = obs.NowNS()
	}
	var frame []byte
	if p.th.Rank() == 0 {
		n := 0
		for _, k := range p.ready {
			if p.gathers[k] != nil {
				n++
			}
		}
		if p.pendingShutdown {
			n++
		}
		e := cdr.GetEncoder(8 + 160*n)
		e.PutULong(uint32(n))
		for _, k := range p.ready {
			g := p.gathers[k]
			delete(p.gathers, k)
			if g == nil {
				continue
			}
			appendDecision(e, g)
		}
		p.ready = p.ready[:0]
		if p.pendingShutdown {
			e.PutOctets(shutdownDecision)
		}
		// The frame is built in a pooled encoder but broadcast as a copy:
		// the chan backend hands buffers to receivers by reference, and the
		// decoded requests on every thread alias the frame for a whole
		// dispatch, so a pooled buffer could be recycled under a reader.
		frame = append([]byte(nil), e.Bytes()...)
		e.Release()
	}
	if p.AgreementDeadline > 0 {
		// Liveness round first: the dissemination barrier transitively
		// waits on every rank, so a dead thread is detected (and blamed)
		// even where the broadcast tree alone would never wait on it — a
		// Bcast leaf's silence is invisible to everyone.
		if err := rts.BarrierDeadline(p.th, p.AgreementDeadline); err != nil {
			p.faultAbort("agreement", err)
			return 0
		}
		var err error
		frame, err = rts.BcastDeadline(p.th, 0, frame, p.AgreementDeadline)
		if err != nil {
			p.faultAbort("agreement", err)
			return 0
		}
	} else {
		frame = rts.Bcast(p.th, 0, frame)
	}
	var phaseEnd int64
	if tracing {
		phaseEnd = obs.NowNS()
	}
	// Decisions alias the frame (GetOctets never copies), which stays alive
	// as long as any decoded request does — DESIGN.md §7 frame ownership.
	d := cdr.GetDecoder(frame)
	n := int(d.GetULong())
	count := 0
	for i := 0; i < n; i++ {
		pay := d.GetOctets()
		if err := d.Err(); err != nil {
			p.faultCollective(fmt.Errorf("poa: corrupt dispatch frame: %w", err))
			break
		}
		var decStart int64
		if tracing {
			decStart = obs.NowNS()
		}
		req, clients, kind, err := decodeDecision(pay)
		if err != nil {
			p.faultCollective(fmt.Errorf("poa: corrupt dispatch decision: %w", err))
			break
		}
		if kind == decShutdown {
			p.shutdown = true
			continue
		}
		var decodeSpan uint64
		if tracing && req.TraceID != 0 {
			// Server-side nesting for this invocation: the decode span hangs
			// under the client's per-attempt send span (req.SpanID crossed
			// the wire for exactly this), the agreement span under the
			// decode, and the broadcast that carried the decision under the
			// agreement.
			rank := int32(p.th.Rank())
			decodeSpan = obs.NewID()
			obs.DefaultTracer.Record(obs.Span{
				Trace: req.TraceID, ID: decodeSpan, Parent: req.SpanID,
				Layer: obs.LayerPGIOP, Name: "pgiop.decode", Op: req.Operation,
				Rank: rank, Start: decStart, End: obs.NowNS(),
			})
			agreeSpan := obs.NewID()
			obs.DefaultTracer.Record(obs.Span{
				Trace: req.TraceID, ID: agreeSpan, Parent: decodeSpan,
				Layer: obs.LayerPOA, Name: "poa.agreement", Op: req.Operation,
				Rank: rank, Start: phaseStart, End: phaseEnd,
			})
			obs.DefaultTracer.Record(obs.Span{
				Trace: req.TraceID, ID: obs.NewID(), Parent: agreeSpan,
				Layer: obs.LayerRTS, Name: "rts.bcast", Op: "agreement",
				Rank: rank, Start: phaseStart, End: phaseEnd,
			})
		}
		p.dispatchSPMD(req, clients, decodeSpan)
		count++
	}
	d.Release()
	return count
}

// shutdownDecision is the one-octet decision payload announcing shutdown.
var shutdownDecision = []byte{decShutdown}

// faultCollective records an unrecoverable failure of the dispatch
// agreement itself and deactivates the adapter through the existing
// shutdown path: a decision frame that does not decode means this thread
// can no longer agree with its siblings on dispatch order, and continuing
// would silently break the §2.1 ordering guarantee. ImplIsReady returns
// after the current phase; the server program observes the cause via
// Fault.
func (p *POA) faultCollective(err error) {
	if p.fault == nil {
		p.fault = err
	}
	p.shutdown = true
}

// appendDecision encodes one dispatch decision, length-prefixed, into the
// agreement frame under construction.
func appendDecision(e *cdr.Encoder, g *gather) {
	var clients []clientInfo
	for rank, r := range g.reqs {
		clients = append(clients, clientInfo{Rank: rank, ReqID: r.ReqID, Addr: r.ReplyAddr})
	}
	sort.Slice(clients, func(a, b int) bool { return clients[a].Rank < clients[b].Rank })
	req := g.reqs[0]
	inner := cdr.GetEncoder(256)
	inner.PutOctet(decDispatch)
	inner.PutOctets(pgiop.EncodeRequest(req))
	inner.PutSeqLen(len(clients))
	for _, c := range clients {
		inner.PutLong(c.Rank)
		inner.PutULong(c.ReqID)
		inner.PutString(c.Addr)
	}
	e.PutOctets(inner.Bytes())
	inner.Release()
}

func decodeDecision(pay []byte) (*pgiop.Request, []clientInfo, byte, error) {
	// Pooled decoder: decoded values alias pay, never the decoder, so
	// releasing it is safe while the request is still in flight.
	d := cdr.GetDecoder(pay)
	defer d.Release()
	kind := d.GetOctet()
	if kind == decShutdown {
		return nil, nil, kind, d.Err()
	}
	req, err := pgiop.DecodeRequest(d.GetOctets())
	if err != nil {
		return nil, nil, kind, err
	}
	n := d.GetSeqLen(4)
	clients := make([]clientInfo, 0, n)
	for i := 0; i < n; i++ {
		clients = append(clients, clientInfo{Rank: d.GetLong(), ReqID: d.GetULong(), Addr: d.GetString()})
	}
	return req, clients, kind, d.Err()
}

// serveSingle services a request for a single object owned by this thread.
// The entry was resolved at routing time; iov is the caller's vectored-send
// scratch (the POA's own for inline dispatch, worker-private under the
// dispatch pool). In pooled mode the servant gets a private context with
// POA unset — single objects never touch the adapter's collective or
// segment state (RegisterSingle rejects distributed arguments), so workers
// share nothing with the owning thread but the concurrency-safe fabric.
//
// Instrumentation wraps the body rather than deferring inside it: this is
// the round-trip hot path, and a capturing defer would cost an allocation
// per request that the CI overhead gate (≤5% allocs/op with tracing off)
// does not grant.
func (p *POA) serveSingle(e *entry, req *pgiop.Request, iov *[2][]byte, pooled bool) {
	start := obs.NowNS()
	poaDispatches.Inc()
	var decodeSpan uint64
	if req.TraceID != 0 && obs.DefaultTracer.Enabled() {
		decodeSpan = obs.NewID()
	}
	failed := p.singleDispatch(e, req, iov, pooled, decodeSpan)
	end := obs.NowNS()
	sec := float64(end-start) / 1e9
	poaDispatchLatency.Observe(sec)
	p.loadLat.Observe(sec)
	poaSLO.Observe(req.Operation, sec, failed)
	if decodeSpan != 0 {
		obs.DefaultTracer.Record(obs.Span{
			Trace: req.TraceID, ID: obs.NewID(), Parent: decodeSpan,
			Layer: obs.LayerPOA, Name: "poa.dispatch", Op: req.Operation,
			Rank: int32(p.th.Rank()), Start: start, End: end,
		})
	}
}

// singleDispatch is serveSingle's body; decodeSpan (0 when untraced) is the
// span ID under which the inline-argument decode records, pre-allocated so
// the wrapper can parent the dispatch span beneath it. The return reports
// whether the dispatch failed (exception sent or undeliverable result) —
// the wrapper's SLO observation.
func (p *POA) singleDispatch(e *entry, req *pgiop.Request, iov *[2][]byte, pooled bool, decodeSpan uint64) bool {
	op, ok := e.iface.Op(req.Operation)
	if !ok {
		if !req.Oneway {
			p.sendException(req.ReplyAddr, req.ReqID, fmt.Sprintf("no operation %s on %s", req.Operation, e.iface.Name))
		}
		return true
	}
	var decStart int64
	if decodeSpan != 0 {
		decStart = obs.NowNS()
	}
	inVals, err := p.decodeInline(op, req.Body)
	if decodeSpan != 0 {
		obs.DefaultTracer.Record(obs.Span{
			Trace: req.TraceID, ID: decodeSpan, Parent: req.SpanID,
			Layer: obs.LayerPGIOP, Name: "pgiop.decode", Op: req.Operation,
			Rank: int32(p.th.Rank()), Start: decStart, End: obs.NowNS(),
		})
	}
	if err != nil {
		if !req.Oneway {
			p.sendException(req.ReplyAddr, req.ReqID, err.Error())
		}
		return true
	}
	var (
		ret  any
		outs []any
		serr error
	)
	if pooled {
		ctx := Context{Thread: p.th, Oneway: req.Oneway}
		ret, outs, serr = e.servant.Invoke(&ctx, op.Name, inVals)
	} else {
		// The reusable context is saved/restored so nested dispatch (a
		// servant calling ProcessRequests mid-computation) cannot corrupt
		// the outer invocation's view; servants must not retain ctx past
		// Invoke.
		saved := p.ctx
		p.ctx = Context{Thread: p.th, POA: p, Oneway: req.Oneway}
		ret, outs, serr = e.servant.Invoke(&p.ctx, op.Name, inVals)
		p.ctx = saved
	}
	if req.Oneway {
		return serr != nil
	}
	if serr != nil {
		p.sendException(req.ReplyAddr, req.ReqID, serr.Error())
		return true
	}
	// The reply body lives in a pooled encoder until the vectored send
	// below returns; the transport does not retain it.
	benc := cdr.GetEncoder(256)
	defer benc.Release()
	body, _, err := p.encodeResults(benc, op, ret, outs, nil, nil, req)
	if err != nil {
		p.sendException(req.ReplyAddr, req.ReqID, err.Error())
		return true
	}
	reply := &pgiop.Reply{ReqID: req.ReqID, Status: pgiop.StatusOK, Body: body}
	hdr := cdr.GetEncoder(128)
	pgiop.AppendReply(hdr, reply)
	iov[0], iov[1] = hdr.Bytes(), reply.Body
	_ = p.r.SendV(nexus.Addr(req.ReplyAddr), iov[:]...)
	iov[0], iov[1] = nil, nil
	hdr.Release()
	return false
}

// decodeInline unmarshals the non-distributed in/inout arguments of a
// request body into the servant argument slots.
func (p *POA) decodeInline(op *core.Operation, body []byte) ([]any, error) {
	inVals := make([]any, len(op.Params))
	// The request frame belongs to this dispatch, so decoded arguments may
	// alias it (zero-copy) — the servant sees stable storage for the whole
	// invocation.
	dec := cdr.GetDecoder(body)
	dec.SetBorrow(true)
	defer dec.Release()
	for i := range op.Params {
		prm := &op.Params[i]
		if prm.Distributed() || prm.Mode == core.Out {
			continue
		}
		v, err := typecode.Unmarshal(dec, prm.Type)
		if err != nil {
			return nil, fmt.Errorf("argument %s: %v", prm.Name, err)
		}
		inVals[i] = v
	}
	return inVals, nil
}

// dispatchSPMD runs one collective invocation on this thread. parentSpan is
// the invocation's pgiop.decode span on this thread (0 when untraced): the
// dispatch span nests under it, and the collection/agreement collectives
// under the dispatch.
func (p *POA) dispatchSPMD(req *pgiop.Request, clients []clientInfo, parentSpan uint64) {
	start := obs.NowNS()
	poaDispatches.Inc()
	traced := parentSpan != 0
	var dispSpan uint64
	if traced {
		dispSpan = obs.NewID()
	}
	failed := false
	defer func() {
		end := obs.NowNS()
		sec := float64(end-start) / 1e9
		poaDispatchLatency.Observe(sec)
		poaSLO.Observe(req.Operation, sec, failed)
		if traced {
			obs.DefaultTracer.Record(obs.Span{
				Trace: req.TraceID, ID: dispSpan, Parent: parentSpan,
				Layer: obs.LayerPOA, Name: "poa.dispatch", Op: req.Operation,
				Rank: int32(p.th.Rank()), Start: start, End: end,
			})
		}
	}()
	rank, size := p.th.Rank(), p.th.Size()
	e := p.objects[req.ObjectKey]
	fail := func(msg string) {
		failed = true
		if rank == 0 && !req.Oneway {
			for _, c := range clients {
				p.sendException(c.Addr, c.ReqID, msg)
			}
		}
	}
	if e == nil {
		fail(fmt.Sprintf("no object %q", req.ObjectKey))
		return
	}
	op, ok := e.iface.Op(req.Operation)
	if !ok {
		fail(fmt.Sprintf("no operation %s on %s", req.Operation, e.iface.Name))
		return
	}
	inVals, err := p.decodeInline(op, req.Body)
	if err != nil {
		fail(err.Error())
		return
	}
	// Receive distributed in arguments: segments were sent directly to
	// this thread by the client threads owning overlapping elements. With a
	// deadline in force a failed collection is recorded rather than
	// returned: the agreement step below must still run so every thread
	// reaches the same verdict.
	var collectErr error
	var collectStart int64
	if traced && len(req.DistIns) > 0 {
		collectStart = obs.NowNS()
	}
	for _, spec := range req.DistIns {
		i := int(spec.Param)
		if i < 0 || i >= len(op.Params) || !op.Params[i].Distributed() {
			fail(fmt.Sprintf("request names non-distributed parameter %d", i))
			return
		}
		prm := &op.Params[i]
		serverLayout := prm.ServerDist.Layout(int(spec.N), size)
		holder := dseq.NewByTC(p.th, serverLayout, prm.Type.Elem)
		if err := p.collectSegments(req, spec, holder, serverLayout); err != nil {
			collectErr = err
			break
		}
		inVals[i] = holder
	}
	if traced && len(req.DistIns) > 0 {
		obs.DefaultTracer.Record(obs.Span{
			Trace: req.TraceID, ID: obs.NewID(), Parent: dispSpan,
			Layer: obs.LayerPOA, Name: "poa.collect", Op: req.Operation,
			Rank: int32(rank), Start: collectStart, End: obs.NowNS(),
		})
	}
	if deadline := p.effDeadline(req); deadline > 0 && size > 1 && len(req.DistIns) > 0 {
		// A thread whose collection timed out must not diverge from
		// siblings whose collection succeeded: agree on one verdict before
		// anyone enters the servant (see ftAgree).
		var agreeStart int64
		if traced {
			agreeStart = obs.NowNS()
		}
		ok, failRank, aerr := p.ftAgree(collectErr == nil, deadline)
		if traced {
			obs.DefaultTracer.Record(obs.Span{
				Trace: req.TraceID, ID: obs.NewID(), Parent: dispSpan,
				Layer: obs.LayerRTS, Name: "rts.allreduce", Op: "collect-agree",
				Rank: int32(rank), Start: agreeStart, End: obs.NowNS(),
			})
		}
		if aerr != nil {
			failed = true
			p.faultAbort("collect-agree", aerr)
			return
		}
		if !ok {
			if collectErr == nil {
				collectErr = fmt.Errorf("collective aborted: server thread %d failed its argument collection", failRank)
			}
			fail(collectErr.Error())
			return
		}
	} else if collectErr != nil {
		fail(collectErr.Error())
		return
	}
	saved := p.ctx
	p.ctx = Context{Thread: p.th, POA: p, Oneway: req.Oneway}
	ret, outs, serr := e.servant.Invoke(&p.ctx, op.Name, inVals)
	p.ctx = saved
	if req.Oneway {
		return
	}
	if serr != nil {
		fail(serr.Error())
		return
	}
	benc := cdr.GetEncoder(256)
	defer benc.Release()
	body, outLens, err := p.encodeResults(benc, op, ret, outs, clients, req.DistOuts, req)
	if err != nil {
		fail(err.Error())
		return
	}
	if rank == 0 {
		hdr := cdr.GetEncoder(128)
		for _, c := range clients {
			reply := &pgiop.Reply{ReqID: c.ReqID, Status: pgiop.StatusOK, Body: body, OutLens: outLens}
			hdr.Reset()
			pgiop.AppendReply(hdr, reply)
			_ = p.sendV2(nexus.Addr(c.Addr), hdr.Bytes(), reply.Body)
		}
		hdr.Release()
	}
}

// collectSegments consumes the in-direction segments of one distributed
// argument until this thread's share is complete. When the request (or the
// adapter) carries a deadline, the wait is bounded: expiry cleans up the
// key and reports which client ranks still owed elements, and the adapter
// stays dispatchable.
func (p *POA) collectSegments(req *pgiop.Request, spec pgiop.DistInSpec, holder dseq.Distributed, serverLayout dist.Layout) error {
	param := spec.Param
	rank := p.th.Rank()
	need := serverLayout.Count(rank)
	k := segKey{req.BindingID, req.SeqNo, param}
	deadline := p.effDeadline(req)
	var until float64
	var gotBy map[int]int
	if deadline > 0 {
		until = p.th.Elapsed() + deadline
		gotBy = map[int]int{}
	}
	got := 0
	for got < need {
		if len(p.segs[k]) == 0 {
			if deadline <= 0 {
				if !p.drainBlocking() {
					return fmt.Errorf("transport closed while receiving argument %d", param)
				}
				continue
			}
			p.drain()
			if len(p.segs[k]) == 0 {
				if p.th.Elapsed() >= until {
					delete(p.segs, k)
					return segTimeout(rank, spec, serverLayout, gotBy, got, need)
				}
				p.idleWait()
			}
			continue
		}
		a := p.segs[k][0]
		p.segs[k] = p.segs[k][1:]
		n, err := p.applySegment(holder, a, need-got)
		if err != nil {
			return fmt.Errorf("argument %d: %v", param, err)
		}
		got += n
		if gotBy != nil {
			gotBy[int(a.Sender)] += n
		}
	}
	delete(p.segs, k)
	return nil
}

// applySegment validates one incoming segment and decodes it into the
// holder. The run list is summed and bounds-checked — including against the
// number of elements still owed, so an overflowing stream is rejected
// *before* any of its payload is written — and decoded runs reuse the POA's
// scratch slice across segments.
func (p *POA) applySegment(holder dseq.Distributed, a *pgiop.ArgStream, remaining int) (int, error) {
	localLen := holder.LocalLen()
	runs := p.runScratch[:0]
	n := 0
	for _, r := range a.Runs {
		if r.Len < 0 || r.DstOff < 0 || int(r.DstOff)+int(r.Len) > localLen {
			return 0, fmt.Errorf("segment run [%d+%d] exceeds local storage %d", r.DstOff, r.Len, localLen)
		}
		runs = append(runs, dist.Run{Global: int(r.Global), Len: int(r.Len), DstOff: int(r.DstOff)})
		n += int(r.Len)
	}
	p.runScratch = runs[:0]
	if n > remaining {
		return 0, fmt.Errorf("segment of %d elements exceeds the %d still expected", n, remaining)
	}
	d := cdr.GetDecoder(a.Payload)
	err := holder.DecodeRuns(d, runs)
	d.Release()
	if err != nil {
		return 0, fmt.Errorf("corrupt segment payload: %v", err)
	}
	return n, nil
}

// encodeResults marshals the inline reply body (return value + non-
// distributed outs) into enc — owned by the caller, which must keep it
// alive until the reply has been sent — and, for SPMD dispatch, ships
// distributed out segments directly to the client threads.
func (p *POA) encodeResults(enc *cdr.Encoder, op *core.Operation, ret any, outs []any,
	clients []clientInfo, distOuts []pgiop.DistOutSpec, req *pgiop.Request) ([]byte, []pgiop.OutLen, error) {

	want := 0
	for i := range op.Params {
		if op.Params[i].Mode != core.In {
			want++
		}
	}
	if len(outs) != want {
		return nil, nil, fmt.Errorf("servant returned %d out values for %d out parameters", len(outs), want)
	}
	if op.Result != nil {
		if err := typecode.Marshal(enc, op.Result, ret); err != nil {
			return nil, nil, fmt.Errorf("return value: %v", err)
		}
	}
	var outLens []pgiop.OutLen
	outIdx := 0
	for i := range op.Params {
		prm := &op.Params[i]
		if prm.Mode == core.In {
			continue
		}
		val := outs[outIdx]
		outIdx++
		if !prm.Distributed() {
			if err := typecode.Marshal(enc, prm.Type, val); err != nil {
				return nil, nil, fmt.Errorf("out value %s: %v", prm.Name, err)
			}
			continue
		}
		holder, ok := val.(dseq.Distributed)
		if !ok {
			return nil, nil, fmt.Errorf("servant returned %T for distributed out %s", val, prm.Name)
		}
		tmpl := prm.ClientDist
		for _, s := range distOuts {
			if int(s.Param) == i {
				tmpl = s.Tmpl
			}
		}
		clientLayout := tmpl.Layout(holder.GlobalLen(), int(req.ClientSize))
		// Same-shape replies reuse the cached transfer schedule, and the
		// per-destination moves fan out from the worker pool: each client
		// thread's segment stream is an independent (binding, seqno, param)
		// key, so reordering sends across destinations is safe. Each move
		// streams as bounded chunks (core.StreamMove), encode overlapping
		// send, so a large result never stages whole in one encoder.
		sched := dist.Cached(holder.DLayout(), clientLayout)
		outMoves := sched.From(p.th.Rank())
		safe := p.r.ConcurrentSendSafe()
		elemSize := holder.ElemSizeHint()
		workers, fanDone := core.FanWidth(p.TransferWorkers, safe, outMoves)
		chunk, streamDone := core.StreamChunk(p.StreamChunkBytes, safe, len(outMoves), core.MoveBytes(outMoves, elemSize))
		param := i
		err := core.FanOutMoves(workers, outMoves, func(mv *dist.Move, iov *[2][]byte) error {
			// The chunk-stream header is per destination here: each client
			// thread matches out-segments by its own request ID.
			spec := core.StreamSpec{
				BindingID: req.BindingID,
				SeqNo:     req.SeqNo,
				ReqID:     clients[mv.To].ReqID,
				Param:     int32(param),
				Dir:       pgiop.DirOut,
				Sender:    int32(p.th.Rank()),
			}
			serr := core.StreamMove(p.r, nexus.Addr(clients[mv.To].Addr), holder, mv, spec, chunk, elemSize, safe, iov)
			if serr != nil {
				return fmt.Errorf("out segment to client %d: %v", mv.To, serr)
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		fanDone()
		streamDone()
		outLens = append(outLens, pgiop.OutLen{Param: int32(i), N: int32(holder.GlobalLen()), Layout: holder.DLayout()})
	}
	return enc.Bytes(), outLens, nil
}
