package poa

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pardis/internal/dist"
	"pardis/internal/nexus"
	"pardis/internal/pgiop"
	"pardis/internal/rts"
)

// Fault is the structured failure that deactivated an adapter: which
// computing-thread rank went silent (-1 when the cause carries no rank),
// during which protocol phase, and the underlying error. POA.Fault returns
// one after a peer death or agreement breakdown; test with errors.As.
type Fault struct {
	Rank  int    // implicated server computing-thread rank, -1 unknown
	Phase string // "agreement", "collect", "collect-agree", "decode"
	Err   error
}

func (f *Fault) Error() string {
	return fmt.Sprintf("poa: fault in %s phase: rank %d: %v", f.Phase, f.Rank, f.Err)
}

func (f *Fault) Unwrap() error { return f.Err }

// faultAbort records a rank-attributed collective failure, deactivates the
// adapter, tells the sibling computing threads (whose own collectives may
// have completed — a Bcast leaf's death is invisible to the root), and
// flushes queued invocations with exceptions so clients are not left to
// their deadlines for requests this server will never dispatch.
func (p *POA) faultAbort(phase string, err error) {
	if p.fault == nil {
		poaFaults.Inc()
		f := &Fault{Rank: -1, Phase: phase, Err: err}
		var re *rts.RankError
		if errors.As(err, &re) {
			f.Rank = re.Rank
		}
		p.fault = f
		p.notifyPeers(f)
	}
	p.shutdown = true
	p.flushFaultExceptions()
}

// adoptFault installs a fault learned from a sibling thread's notice. It is
// not re-broadcast: the witness already told every peer.
func (p *POA) adoptFault(n *pgiop.FaultNotice) {
	if p.fault == nil {
		poaFaults.Inc()
		p.fault = &Fault{Rank: int(n.Rank), Phase: n.Phase, Err: errors.New(n.Reason)}
	}
	p.shutdown = true
	p.flushFaultExceptions()
}

// notifyPeers sends the fault notice to every sibling computing thread's
// router, best effort — the implicated rank (and any other casualty) simply
// won't hear it.
func (p *POA) notifyPeers(f *Fault) {
	if len(p.peers) == 0 {
		return
	}
	notice := pgiop.EncodeFaultNotice(&pgiop.FaultNotice{
		Rank: int32(f.Rank), Phase: f.Phase, Reason: f.Err.Error(),
	})
	me := string(p.r.Addr())
	for _, a := range p.peers {
		if a != me {
			_ = p.r.Send(nexus.Addr(a), notice)
		}
	}
}

// flushFaultExceptions answers every gathered-but-undispatched invocation
// with an exception naming the fault. Invocations already dispatched when
// the fault struck are past their gather entries; their clients detect the
// loss through their own invocation deadlines.
func (p *POA) flushFaultExceptions() {
	if len(p.gathers) == 0 && len(p.localQ) == 0 {
		return
	}
	msg := "server fault: " + p.fault.Error()
	for k, g := range p.gathers {
		delete(p.gathers, k)
		for _, r := range g.reqs {
			if !r.Oneway {
				p.sendException(r.ReplyAddr, r.ReqID, msg)
			}
		}
	}
	p.ready = p.ready[:0]
	for _, lr := range p.localQ {
		if !lr.req.Oneway {
			p.sendException(lr.req.ReplyAddr, lr.req.ReqID, msg)
		}
	}
	p.localQ = p.localQ[:0]
}

// effDeadline is the deadline (seconds) bounding this request's server-side
// blocking waits: the client's wire deadline when it set one, else the
// adapter-wide default. 0 means unbounded (the pre-deadline behavior).
func (p *POA) effDeadline(req *pgiop.Request) float64 {
	if req.DeadlineMS > 0 {
		return float64(req.DeadlineMS) / 1000
	}
	return p.CollectDeadline
}

// segTimeout builds the rank-attributed error for an argument collection
// that hit its deadline: the exchange schedule says exactly which client
// ranks still owed this thread elements.
func segTimeout(rank int, spec pgiop.DistInSpec, serverLayout dist.Layout, gotBy map[int]int, got, need int) error {
	sched := dist.Cached(spec.Layout, serverLayout)
	expect := map[int]int{}
	for s := 0; s < spec.Layout.P; s++ {
		for _, m := range sched.From(s) {
			if m.To == rank {
				expect[s] += m.Elements()
			}
		}
	}
	var missing []int
	for s := 0; s < spec.Layout.P; s++ {
		if expect[s] > gotBy[s] {
			missing = append(missing, s)
		}
	}
	return fmt.Errorf("deadline collecting argument %d: %d of %d elements; missing segments from client rank(s) %v",
		spec.Param, got, need, missing)
}

// ftAgree is the post-collection agreement of a deadlined SPMD dispatch:
// each thread contributes whether its argument collection succeeded, and
// the all-reduce (bounded by the same deadline) delivers one verdict to
// every thread — the lowest-ranked failure wins. Without it a thread whose
// collection timed out would skip the servant while its siblings entered
// it, and the servant's own collectives would hang past any deadline.
//
// The verdict wire format is [ok octet | failing rank int32].
func (p *POA) ftAgree(collectOK bool, seconds float64) (ok bool, failRank int, err error) {
	var buf [5]byte
	if collectOK {
		buf[0] = 1
	}
	binary.BigEndian.PutUint32(buf[1:], uint32(p.th.Rank()))
	res, rerr := rts.AllReduceDeadline(p.th, buf[:], ftAgreeOp, seconds)
	if rerr != nil {
		return false, -1, rerr
	}
	if len(res) != 5 {
		return false, -1, fmt.Errorf("poa: corrupt collect agreement frame of %d bytes", len(res))
	}
	return res[0] == 1, int(int32(binary.BigEndian.Uint32(res[1:]))), nil
}

// ftAgreeOp folds two collection verdicts: a failure beats a success, and
// between failures the lower rank wins (deterministic attribution).
func ftAgreeOp(acc, in []byte) []byte {
	if len(acc) != 5 || len(in) != 5 {
		return acc
	}
	accOK, inOK := acc[0] == 1, in[0] == 1
	switch {
	case accOK && !inOK:
		copy(acc, in)
	case !accOK && !inOK:
		if binary.BigEndian.Uint32(in[1:]) < binary.BigEndian.Uint32(acc[1:]) {
			copy(acc, in)
		}
	}
	return acc
}
