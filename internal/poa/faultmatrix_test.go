package poa_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pardis/internal/core"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/nexus"
	"pardis/internal/poa"
	"pardis/internal/rts"
	"pardis/internal/typecode"
)

// probeIface is the retry-eligible interface: probe is idempotent, so a
// timed-out invocation may be transparently re-issued.
func probeIface() *core.InterfaceDef {
	return &core.InterfaceDef{
		Name: "prober",
		Ops: []core.Operation{{
			Name:       "probe",
			Idempotent: true,
			Params:     []core.Param{core.NewParam("n", core.In, typecode.TCLong)},
			Result:     typecode.TCDouble,
		}},
	}
}

type probeServant struct {
	mu    sync.Mutex
	calls int
}

func (s *probeServant) Invoke(_ *poa.Context, op string, in []any) (any, []any, error) {
	if op != "probe" {
		return nil, nil, fmt.Errorf("bad op %s", op)
	}
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	return float64(in[0].(int32)) * 0.5, nil, nil
}

// epFactory abstracts the fabric under test: the matrix runs every fault
// kind over both the in-process and the TCP transport.
type epFactory func(name string) (nexus.Endpoint, error)

func matrixBackends() []struct {
	name   string
	newFac func() epFactory
} {
	return []struct {
		name   string
		newFac func() epFactory
	}{
		{"inproc", func() epFactory {
			fab := nexus.NewInproc()
			return func(name string) (nexus.Endpoint, error) { return fab.NewEndpoint(name), nil }
		}},
		{"tcp", func() epFactory {
			return func(string) (nexus.Endpoint, error) { return nexus.NewTCPEndpoint("") }
		}},
	}
}

// startFaultedSingleServer runs a one-thread server for the probe object on
// a fault-wrapped endpoint and returns its IOR plus a retire func that
// shuts it down (through a clean endpoint, so the shutdown itself cannot be
// eaten by the injector).
func startFaultedSingleServer(t *testing.T, newEP epFactory, fi *nexus.FaultInjector) (core.IOR, *probeServant, func()) {
	t.Helper()
	th := rts.NewChanGroup("fm-srv", 1).Thread(0)
	ep, err := newEP("fm-server")
	if err != nil {
		t.Fatal(err)
	}
	p := poa.New(th, core.NewRouter(fi.Wrap(ep)), nil)
	p.PollInterval = 50e-6
	srv := &probeServant{}
	ior, err := p.RegisterSingle("probe-1", probeIface(), srv)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.ImplIsReady()
	}()
	retire := func() {
		sep, err := newEP("fm-stopper")
		if err == nil {
			orb := core.NewORB(core.NewRouter(sep), nil, nil)
			if b, err := orb.Bind(ior, probeIface()); err == nil {
				_ = b.Shutdown("matrix cell done")
			}
			defer sep.Close()
		}
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("server did not retire: shutdown lost or POA wedged")
		}
		ep.Close()
	}
	return ior, srv, retire
}

// runFaultMatrixCell drives one (fault kind, backend) cell: a client with a
// deadline and an idempotent-retry policy issues a burst of invocations
// through the injector. Every outcome must be either a correct result or a
// structured InvokeError — never a hang, never an unstructured failure —
// and the adapter must still dispatch cleanly afterwards.
func runFaultMatrixCell(t *testing.T, newEP epFactory, plan nexus.FaultPlan, seed uint64) {
	t.Helper()
	fi := nexus.NewFaultInjector(seed, plan)
	ior, _, retire := startFaultedSingleServer(t, newEP, fi)
	defer retire()

	cep, err := newEP("fm-client")
	if err != nil {
		t.Fatal(err)
	}
	defer cep.Close()
	orb := core.NewORB(core.NewRouter(fi.Wrap(cep)), nil, nil)
	b, err := orb.Bind(ior, probeIface())
	if err != nil {
		t.Fatal(err)
	}
	b.SetDeadline(0.1)
	b.SetRetryPolicy(core.RetryPolicy{MaxAttempts: 6, BaseBackoff: 0.004, MaxBackoff: 0.02, JitterSeed: seed})

	// The burst keeps going until the injector has demonstrably fired (the
	// per-endpoint schedule depends on the endpoint address, which is
	// ephemeral on TCP, so a fixed small burst could land on a clean
	// stretch) — bounded so a broken injector still fails fast.
	const minBurst, maxBurst = 10, 50
	successes, issued := 0, 0
	for i := 0; i < maxBurst; i++ {
		if i >= minBurst {
			st := fi.Stats()
			if st.Dropped+st.Truncated+st.Duplicated+st.Delayed > 0 {
				break
			}
		}
		issued++
		vals, err := b.Invoke("probe", []any{int32(i)})
		if err != nil {
			var ie *core.InvokeError
			if !errors.As(err, &ie) {
				t.Fatalf("invocation %d: unstructured failure %T: %v", i, err, err)
			}
			if !errors.Is(err, core.ErrDeadline) {
				t.Fatalf("invocation %d: InvokeError not wrapping ErrDeadline: %v", i, err)
			}
			continue
		}
		if vals[0] != float64(i)*0.5 {
			t.Fatalf("invocation %d: result %v, want %v (retry matched a stale reply?)", i, vals[0], float64(i)*0.5)
		}
		successes++
	}
	if successes == 0 {
		t.Fatalf("all %d invocations failed under %+v — retries never recovered", issued, plan)
	}
	if st := fi.Stats(); st.Dropped+st.Truncated+st.Duplicated+st.Delayed == 0 {
		t.Fatalf("plan %+v injected nothing (sent %d) — the cell tested a clean network", plan, st.Sent)
	}

	// Graceful degradation: after the chaos the adapter must still answer.
	// The fresh client's own sends are clean, but replies still cross the
	// server's wrapped endpoint (they can be eaten or held behind later
	// traffic), so this check relies on the retry policy — which is the
	// point: deadline + idempotent retry rides out a lossy network.
	hep, err := newEP("fm-healthy")
	if err != nil {
		t.Fatal(err)
	}
	defer hep.Close()
	orb2 := core.NewORB(core.NewRouter(hep), nil, nil)
	b2, err := orb2.Bind(ior, probeIface())
	if err != nil {
		t.Fatal(err)
	}
	b2.SetDeadline(0.3)
	b2.SetRetryPolicy(core.RetryPolicy{MaxAttempts: 12, BaseBackoff: 0.004, MaxBackoff: 0.02, JitterSeed: seed + 1})
	vals, err := b2.Invoke("probe", []any{int32(21)})
	if err != nil || vals[0] != 10.5 {
		t.Fatalf("POA not dispatchable after fault burst: %v, %v", vals, err)
	}
}

// TestFaultMatrix is the satellite fault-matrix: every injected fault kind
// crossed with every fabric, each cell asserting bounded structured errors
// and a still-dispatchable adapter.
func TestFaultMatrix(t *testing.T) {
	kinds := []struct {
		name string
		plan nexus.FaultPlan
	}{
		{"drop", nexus.FaultPlan{Drop: 0.25}},
		{"delay", nexus.FaultPlan{Delay: 0.3, DelaySpan: 2}},
		{"dup", nexus.FaultPlan{Dup: 0.3}},
		{"truncate", nexus.FaultPlan{Truncate: 0.25}},
		{"mixed", nexus.FaultPlan{Drop: 0.1, Delay: 0.1, Dup: 0.1, Truncate: 0.1}},
	}
	for _, be := range matrixBackends() {
		for _, k := range kinds {
			t.Run(be.name+"/"+k.name, func(t *testing.T) {
				runFaultMatrixCell(t, be.newFac(), k.plan, 0xC0FFEE)
			})
		}
	}
}

// firstNEP lets the first `allow` frames through and silently swallows the
// rest — a client that died between its request header and its argument
// segments, as seen from the network.
type firstNEP struct {
	nexus.Endpoint
	mu    sync.Mutex
	allow int
}

func (e *firstNEP) Send(to nexus.Addr, data []byte) error { return e.SendV(to, data) }

func (e *firstNEP) SendV(to nexus.Addr, bufs ...[]byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.allow <= 0 {
		return nil // the dead keep their sends to themselves
	}
	e.allow--
	return e.Endpoint.SendV(to, bufs...)
}

// TestFaultMatrixClientDeath is the client-death row of the matrix: a
// client expires after shipping only its request header, leaving the server
// waiting on argument segments that will never come. CollectDeadline must
// bound that wait, attribute the missing client rank, and leave the adapter
// serving the next (healthy) client — on both fabrics.
func TestFaultMatrixClientDeath(t *testing.T) {
	for _, be := range matrixBackends() {
		t.Run(be.name, func(t *testing.T) {
			newEP := be.newFac()
			th := rts.NewChanGroup("cd-srv", 1).Thread(0)
			ep, err := newEP("cd-server")
			if err != nil {
				t.Fatal(err)
			}
			defer ep.Close()
			p := poa.New(th, core.NewRouter(ep), nil)
			p.PollInterval = 50e-6
			p.CollectDeadline = 0.2
			ior, err := p.RegisterSPMD("cd-scaler", scaleIface(), scaleServant{})
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				p.ImplIsReady()
			}()

			// The dying client: header out, then silence.
			evilTh := rts.NewChanGroup("cd-evil", 1).Thread(0)
			eep, err := newEP("cd-evil")
			if err != nil {
				t.Fatal(err)
			}
			defer eep.Close()
			evil := core.NewORB(core.NewRouter(&firstNEP{Endpoint: eep, allow: 1}), evilTh, nil)
			eb, err := evil.SPMDBind(ior, scaleIface())
			if err != nil {
				t.Fatal(err)
			}
			x := dseq.New[float64](evilTh, 48, dist.BlockTemplate(), dseq.Float64Codec{})
			y := dseq.New[float64](evilTh, 0, dist.BlockTemplate(), dseq.Float64Codec{})
			if _, err := eb.InvokeNB("scale", []any{2.0, x, y}); err != nil {
				t.Fatal(err)
			}
			// The cell is abandoned: its owner is dead. The server must not be.

			start := time.Now()
			hth := rts.NewChanGroup("cd-healthy", 1).Thread(0)
			hep, err := newEP("cd-healthy")
			if err != nil {
				t.Fatal(err)
			}
			defer hep.Close()
			orb := core.NewORB(core.NewRouter(hep), hth, nil)
			hb, err := orb.SPMDBind(ior, scaleIface())
			if err != nil {
				t.Fatal(err)
			}
			hb.SetDeadline(10)
			vals, err := hb.Invoke("size", []any{nil})
			if err != nil || vals[0] != int32(1) {
				t.Fatalf("healthy client after client-death: %v, %v", vals, err)
			}
			// Bounded recovery: the healthy dispatch had to wait out at most
			// the collect deadline, not an unbounded segment wait.
			if waited := time.Since(start); waited > 5*time.Second {
				t.Fatalf("recovery took %v — CollectDeadline did not bound the dead client's hold", waited)
			}

			if err := hb.Shutdown("client-death cell done"); err != nil {
				t.Fatal(err)
			}
			<-done
		})
	}
}
