package poa

import (
	"pardis/internal/cdr"
	"pardis/internal/nexus"
	"pardis/internal/obs"
	"pardis/internal/pgiop"
)

// shedErrorMsg is the constant exception reason of a shed reply. A constant
// — not fmt output — because the shed path runs when the server is already
// saturated and must not spend allocations describing that fact.
const shedErrorMsg = "poa: admission queue full"

// SetAdmission arms admission control for single-object dispatch: when more
// than limit accepted requests are queued or executing, further arrivals are
// refused immediately with a StatusOverloaded reply carrying retryAfter
// (seconds, rounded up to whole milliseconds; <= 0 defaults to 1ms) as the
// client's backoff hint. Oneway arrivals over the watermark are dropped.
//
// The shed happens at routing time, before any dispatch state is built, so
// an overloaded adapter answers in transport time rather than queue time —
// the graceful-degradation contract a replicated group's failover relies
// on. limit <= 0 disables admission control (the default). Call from the
// POA's owning thread, like every configuration method.
func (p *POA) SetAdmission(limit int, retryAfter float64) {
	p.admitLimit = limit
	ms := retryAfter * 1000
	if ms < 1 {
		ms = 1
	}
	p.shedHintMS = uint32(ms)
}

// overAdmission reports whether accepting one more single-object request
// would cross the admission watermark.
func (p *POA) overAdmission() bool {
	return p.admitLimit > 0 && int(p.admitted.Load()) >= p.admitLimit
}

// shed refuses a single-object request at the admission watermark. The
// reply is assembled from constants and POA-owned scratch — no body decode,
// no operation lookup, no dispatch context — so shedding N requests costs N
// sends and nothing else.
func (p *POA) shed(req *pgiop.Request) {
	poaSheds.Inc()
	p.shedCount.Add(1)
	// A shed may be the only thing the server ever records about this
	// request; the mark alone opens (and retains) the trace in the flight
	// recorder. One atomic load when the recorder is off.
	obs.DefaultTracer.MarkTrace(req.TraceID, obs.RetainShed)
	if req.Oneway {
		return
	}
	p.shedScratch = pgiop.Reply{
		ReqID:        req.ReqID,
		Status:       pgiop.StatusOverloaded,
		Error:        shedErrorMsg,
		RetryAfterMS: p.shedHintMS,
	}
	hdr := cdr.GetEncoder(64)
	pgiop.AppendReply(hdr, &p.shedScratch)
	_ = p.r.Send(nexus.Addr(req.ReplyAddr), hdr.Bytes())
	hdr.Release()
}

// LoadReport snapshots this adapter's load signal for a registry heartbeat:
// the p95 single-object dispatch latency (seconds) observed so far and the
// number of accepted requests currently queued or executing. Safe to call
// from any goroutine — both quantities are atomics — so a heartbeat loop
// never synchronizes with the dispatch path.
func (p *POA) LoadReport() (p95 float64, depth int) {
	return p.loadLat.Snapshot().P95, int(p.admitted.Load())
}

// ShedCount reports how many requests this adapter has refused at the
// admission watermark, distinct from the process-wide poa_shed_total so a
// harness hosting several adapters can attribute sheds per replica. Safe to
// call from any goroutine.
func (p *POA) ShedCount() uint64 {
	return p.shedCount.Load()
}

// MetricsSnapshot is the raw material of a heartbeat metrics digest: the
// single-object dispatch latency distribution, the accepted-queue depth,
// and the shed count, all readable from any goroutine.
func (p *POA) MetricsSnapshot() (lat obs.HistogramSnapshot, depth int, sheds uint64) {
	return p.loadLat.Snapshot(), int(p.admitted.Load()), p.shedCount.Load()
}
