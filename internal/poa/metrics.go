package poa

import "pardis/internal/obs"

// Process-wide POA instruments, shared by every computing thread's adapter
// (per-thread attribution lives in trace spans, not metric names).
var (
	poaDispatches = obs.Default.MustCounter("poa_dispatches_total")
	poaExceptions = obs.Default.MustCounter("poa_exceptions_total")
	poaFaults     = obs.Default.MustCounter("poa_faults_total")
	// poaAgreementPhases counts collective dispatch-agreement rounds —
	// every polling round of every thread runs one, so this is also the
	// adapter's liveness heartbeat.
	poaAgreementPhases = obs.Default.MustCounter("poa_agreement_phases_total")
	// poaPoolDepth is the number of single-object requests currently queued
	// to or executing on the opt-in dispatch pool.
	poaPoolDepth = obs.Default.MustGauge("poa_dispatch_pool_depth")
	// poaPoolWorkers is the dispatch pool's current worker count — fixed
	// under SetDispatchWorkers, floating in [min, max] under
	// SetDispatchAuto. Last-writer-wins across POAs, like the depth gauge.
	poaPoolWorkers = obs.Default.MustGauge("poa_dispatch_pool_workers")
	// poaPoolResizes counts self-sizing grow/shrink events of the auto
	// dispatch pool.
	poaPoolResizes = obs.Default.MustCounter("poa_dispatch_pool_resizes_total")
	// poaDispatchLatency observes routing-to-reply time of every dispatch,
	// single and SPMD.
	poaDispatchLatency = obs.Default.MustHistogram("poa_dispatch_latency_seconds")
	// poaSheds counts requests refused at the admission watermark (see
	// SetAdmission) — each one answered with StatusOverloaded and a retry
	// hint rather than queued.
	poaSheds = obs.Default.MustCounter("poa_shed_total")
	// poaSLO accounts each operation's latency/error budget as seen at the
	// adapter: a dispatch is good iff the servant produced a deliverable
	// result within the per-op latency target (sheds never reach dispatch,
	// so they show up in the client-side orb_slo instead).
	poaSLO = obs.Default.MustSLOSet("poa_slo", obs.SLOConfig{})
)

// DispatchSLOs exposes the server-side SLO set so deployments can set
// per-operation objectives (obs.SLOSet.Define).
func DispatchSLOs() *obs.SLOSet { return poaSLO }

// ServeDebug starts the opt-in introspection endpoint (Prometheus text at
// /metrics, expvar-style JSON at /debug/vars, Chrome trace JSON at
// /debug/trace) for the process this POA lives in, returning the bound
// address and a closer. addr may be ":0" for an ephemeral port.
func (p *POA) ServeDebug(addr string) (string, func() error, error) {
	return obs.Serve(addr, obs.Default, obs.DefaultTracer)
}
