package poa_test

import (
	"fmt"
	"sync"
	"testing"

	"pardis/internal/core"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/nexus"
	"pardis/internal/poa"
	"pardis/internal/rts"
)

// runStreamedAxpy runs one SPMD axpy round trip with the given chunk pin on
// both the ORB (in-argument) and POA (out-result) segment senders, and
// verifies every element on every client thread. chunkBytes < 0 is the
// staged whole-move path, tiny positive values force many chunks per move.
func runStreamedAxpy(t *testing.T, n, servers, clients, chunkBytes int) {
	t.Helper()
	fab := nexus.NewInproc()
	serverG := rts.NewChanGroup("ssrv-g", servers)
	clientG := rts.NewChanGroup("scli-g", clients)
	iorCh := make(chan core.IOR, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		serverG.Run(func(th rts.Thread) {
			r := core.NewRouter(fab.NewEndpoint(fmt.Sprintf("ssrv%d-%d", chunkBytes, th.Rank())))
			p := poa.New(th, r, nil)
			p.PollInterval = 20e-6
			p.StreamChunkBytes = chunkBytes
			ior, err := p.RegisterSPMD("stream-axpy", axpyIface(), axpyServant{})
			if err != nil {
				t.Error(err)
				return
			}
			if th.Rank() == 0 {
				iorCh <- ior
			}
			p.ImplIsReady()
		})
	}()
	ior := <-iorCh
	clientG.Run(func(th rts.Thread) {
		r := core.NewRouter(fab.NewEndpoint(fmt.Sprintf("scli%d-%d", chunkBytes, th.Rank())))
		orb := core.NewORB(r, th, nil)
		orb.StreamChunkBytes = chunkBytes
		b, err := orb.SPMDBind(ior, axpyIface())
		if err != nil {
			t.Error(err)
			return
		}
		x := dseq.New[float64](th, n, dist.BlockTemplate(), dseq.Float64Codec{})
		y := dseq.New[float64](th, n, dist.BlockTemplate(), dseq.Float64Codec{})
		for loc := range x.Local() {
			g := float64(x.Layout().GlobalIndex(th.Rank(), loc))
			x.Local()[loc] = g
			y.Local()[loc] = 1000 * g
		}
		z := dseq.New[float64](th, 0, dist.BlockTemplate(), dseq.Float64Codec{})
		vals, err := b.Invoke("axpy", []any{2.0, x, y, z})
		if err != nil {
			panic(err)
		}
		zd := dseq.AsFloat64(vals[0].(dseq.Distributed))
		for loc, v := range zd.Local() {
			g := float64(zd.DLayout().GlobalIndex(th.Rank(), loc))
			if want := 2*g + 1000*g; v != want {
				panic(fmt.Sprintf("chunk %d: z[%v] = %v, want %v", chunkBytes, g, v, want))
			}
		}
		th.Barrier()
		if th.Rank() == 0 {
			b.Shutdown("done")
		}
	})
	wg.Wait()
}

// TestStreamedTransferMatchesStaged pins the streamed segment pipeline
// against the staged whole-move baseline across chunk sizes that slice the
// same payload very differently: one element per chunk, a run-misaligned
// size, one that chunks only the larger moves, and one larger than any
// payload (the single-frame fast path). Every variant must deliver results
// identical to the staged path on uneven server/client thread counts.
func TestStreamedTransferMatchesStaged(t *testing.T) {
	const n = 3001
	for _, chunk := range []int{-1, 8, 100, 4 << 10, 1 << 26} {
		runStreamedAxpy(t, n, 4, 3, chunk)
	}
}

// TestStreamedTransferChunkMetrics forces many chunks through one transfer
// and checks the observability contract: the chunk counter advances and the
// peak-residency watermark stays at O(chunk), far under the payload size.
func TestStreamedTransferChunkMetrics(t *testing.T) {
	const n = 20_000 // 160 KB of doubles end to end
	const chunk = 1 << 10
	before := core.StreamChunksTotal()
	core.ResetStreamPeak()
	runStreamedAxpy(t, n, 2, 2, chunk)
	sent := core.StreamChunksTotal() - before
	// Three distributed parameters cross 2x2 thread pairs in ~1 KiB chunks:
	// far more frames than the 12 a staged transfer would use.
	if sent < 100 {
		t.Fatalf("chunk counter advanced by %d; expected a chunked transfer", sent)
	}
	peak := core.StreamPeakBytes()
	if peak <= 0 {
		t.Fatal("peak buffer watermark not recorded")
	}
	if peak > 2*chunk {
		t.Fatalf("peak encoder residency %d bytes; want <= 2x the %d-byte chunk", peak, chunk)
	}
}
