package poa_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"pardis/internal/core"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/future"
	"pardis/internal/nexus"
	"pardis/internal/pgiop"
	"pardis/internal/poa"
	"pardis/internal/rts"
	"pardis/internal/typecode"
)

// faultyIface has ops that misbehave in interesting ways.
func faultyIface() *core.InterfaceDef {
	dv := typecode.DSequenceOf(typecode.TCDouble, 0, "BLOCK", "BLOCK")
	return &core.InterfaceDef{
		Name: "faulty",
		Ops: []core.Operation{
			{Name: "boom", Params: []core.Param{core.NewParam("x", core.In, dv)}},
			{Name: "wrongouts", Result: typecode.TCLong,
				Params: []core.Param{core.NewParam("y", core.Out, typecode.TCLong)}},
			{Name: "badtype", Result: typecode.TCLong},
			{Name: "slow", Params: []core.Param{core.NewParam("ms", core.In, typecode.TCLong)}},
			{Name: "seq", Result: typecode.TCLong},
		},
	}
}

type faultyServant struct {
	mu      sync.Mutex
	seen    []string
	counter int32
}

func (f *faultyServant) Invoke(ctx *poa.Context, op string, in []any) (any, []any, error) {
	f.mu.Lock()
	f.seen = append(f.seen, op)
	f.mu.Unlock()
	switch op {
	case "boom":
		return nil, nil, errors.New("kaboom")
	case "wrongouts":
		return int32(1), nil, nil // missing the out value
	case "badtype":
		return "not an int32", nil, nil
	case "slow":
		return nil, nil, nil
	case "seq":
		f.mu.Lock()
		f.counter++
		v := f.counter
		f.mu.Unlock()
		return v, nil, nil
	}
	return nil, nil, fmt.Errorf("bad op")
}

func startFaulty(t *testing.T, fab *nexus.Inproc, threads int) (core.IOR, *faultyServant, func()) {
	t.Helper()
	srv := &faultyServant{}
	iorCh := make(chan core.IOR, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rts.NewChanGroup("faulty-host", threads).Run(func(th rts.Thread) {
			r := core.NewRouter(fab.NewEndpoint(fmt.Sprintf("flt%d", th.Rank())))
			p := poa.New(th, r, nil)
			p.PollInterval = 20e-6
			ior, err := p.RegisterSPMD("faulty-1", faultyIface(), srv)
			if err != nil {
				t.Error(err)
				return
			}
			if th.Rank() == 0 {
				iorCh <- ior
			}
			p.ImplIsReady()
		})
	}()
	ior := <-iorCh
	return ior, srv, wg.Wait
}

func TestSPMDExceptionReachesAllClientThreads(t *testing.T) {
	fab := nexus.NewInproc()
	ior, _, wait := startFaulty(t, fab, 3)
	errs := make([]error, 2)
	rts.NewChanGroup("cli", 2).Run(func(th rts.Thread) {
		orb := core.NewORB(core.NewRouter(fab.NewEndpoint(fmt.Sprintf("c%d", th.Rank()))), th, nil)
		b, _ := orb.SPMDBind(ior, faultyIface())
		x := dseq.New[float64](th, 10, dist.BlockTemplate(), dseq.Float64Codec{})
		_, err := b.Invoke("boom", []any{x})
		errs[th.Rank()] = err
		th.Barrier()
		if th.Rank() == 0 {
			b.Shutdown("done")
		}
	})
	wait()
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("thread %d err = %v", i, err)
		}
	}
}

func TestServantReturningWrongOutCountIsException(t *testing.T) {
	fab := nexus.NewInproc()
	ior, _, wait := startFaulty(t, fab, 1)
	orb := core.NewORB(core.NewRouter(fab.NewEndpoint("c")), nil, nil)
	b, _ := orb.SPMDBind(ior, faultyIface())
	_, err := b.Invoke("wrongouts", []any{nil})
	if err == nil || !strings.Contains(err.Error(), "out values") {
		t.Fatalf("err = %v", err)
	}
	// Server survives.
	if vals, err := b.Invoke("seq", nil); err != nil || vals[0] != int32(1) {
		t.Fatalf("post-failure call: %v %v", vals, err)
	}
	b.Shutdown("done")
	wait()
}

func TestServantReturningWrongTypeIsException(t *testing.T) {
	fab := nexus.NewInproc()
	ior, _, wait := startFaulty(t, fab, 1)
	orb := core.NewORB(core.NewRouter(fab.NewEndpoint("c")), nil, nil)
	b, _ := orb.SPMDBind(ior, faultyIface())
	if _, err := b.Invoke("badtype", nil); err == nil {
		t.Fatal("want marshal exception")
	}
	b.Shutdown("done")
	wait()
}

func TestPerBindingOrderingGuarantee(t *testing.T) {
	// The paper: "PARDIS guarantees that sequence of invocation is
	// preserved for single and SPMD clients." Fire many non-blocking
	// invocations and check the servant observed monotonically
	// increasing counter values in reply order.
	fab := nexus.NewInproc()
	ior, _, wait := startFaulty(t, fab, 2)
	orb := core.NewORB(core.NewRouter(fab.NewEndpoint("c")), nil, nil)
	b, _ := orb.SPMDBind(ior, faultyIface())
	const k = 25
	cells := make([]*future.Cell, 0, k)
	for i := 0; i < k; i++ {
		c, err := b.InvokeNB("seq", nil)
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, c)
	}
	for i, c := range cells {
		vals, err := core.CellResults(c)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		// The i-th request must observe the i-th counter increment.
		if vals[0] != int32(i+1) {
			t.Fatalf("request %d saw counter %v — invocation order violated", i, vals[0])
		}
	}
	b.Shutdown("done")
	wait()
}

func TestCancelPendingRequest(t *testing.T) {
	fab := nexus.NewInproc()
	ior, _, wait := startFaulty(t, fab, 1)
	orb := core.NewORB(core.NewRouter(fab.NewEndpoint("c")), nil, nil)
	b, _ := orb.SPMDBind(ior, faultyIface())
	cell, err := b.InvokeNB("slow", []any{int32(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !orb.Cancel(cell) {
		t.Fatal("Cancel did not find the pending request")
	}
	if err := cell.Wait(); !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("cancelled cell resolved with %v", err)
	}
	if orb.Cancel(cell) {
		t.Fatal("double cancel reported success")
	}
	// The binding remains usable after a cancellation.
	if vals, err := b.Invoke("seq", nil); err != nil || vals[0] != int32(1) {
		// The cancelled request may or may not have been dispatched
		// first, so accept either counter value.
		if err != nil {
			t.Fatalf("post-cancel call: %v", err)
		}
	}
	b.Shutdown("done")
	wait()
}

func TestHostileSegmentRejected(t *testing.T) {
	// A forged ArgStream whose runs exceed the receiver's local storage
	// must produce a server exception, not a crash or silent corruption.
	fab := nexus.NewInproc()
	ior, _, wait := startFaulty(t, fab, 1)
	ep := fab.NewEndpoint("evil")
	layout := dist.BlockTemplate().Layout(10, 1)
	req := &pgiop.Request{
		BindingID: "evil-binding", SeqNo: 0, ReqID: 99,
		ClientRank: 0, ClientSize: 1,
		ReplyAddr: string(ep.Addr()),
		ObjectKey: "faulty-1", Operation: "boom",
		DistIns: []pgiop.DistInSpec{{Param: 0, N: 10, Layout: layout}},
	}
	seg := &pgiop.ArgStream{
		BindingID: "evil-binding", SeqNo: 0, Param: 0, Dir: pgiop.DirIn,
		Runs:    []pgiop.Run{{Global: 0, Len: 1000, DstOff: 0}},
		Payload: make([]byte, 8000),
	}
	if err := ep.Send(nexus.Addr(ior.Addrs[0]), pgiop.EncodeRequest(req)); err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(nexus.Addr(ior.Addrs[0]), pgiop.EncodeArgStream(seg)); err != nil {
		t.Fatal(err)
	}
	fr, err := ep.Recv()
	if err != nil {
		t.Fatal(err)
	}
	reply, err := pgiop.DecodeReply(fr.Data)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Status != pgiop.StatusException || !strings.Contains(reply.Error, "exceeds local storage") {
		t.Fatalf("reply = %+v", reply)
	}
	// And the server survives for a legitimate client.
	orb := core.NewORB(core.NewRouter(fab.NewEndpoint("c")), nil, nil)
	b, _ := orb.SPMDBind(ior, faultyIface())
	if vals, err := b.Invoke("seq", nil); err != nil || vals[0] != int32(1) {
		t.Fatalf("post-attack call: %v %v", vals, err)
	}
	b.Shutdown("done")
	wait()
}

func TestRequestForUnknownObjectAndOperation(t *testing.T) {
	fab := nexus.NewInproc()
	ior, _, wait := startFaulty(t, fab, 1)
	orb := core.NewORB(core.NewRouter(fab.NewEndpoint("c")), nil, nil)
	bogus := ior
	bogus.Key = "no-such-object"
	b, _ := orb.SPMDBind(bogus, faultyIface())
	if _, err := b.Invoke("seq", nil); err == nil || !strings.Contains(err.Error(), "no object") {
		t.Fatalf("err = %v", err)
	}
	// Unknown operation: an interface definition with an extra op the
	// server's servant table lacks.
	phantom := faultyIface()
	phantom.Ops = append(phantom.Ops, core.Operation{Name: "phantom"})
	b2, err := orb.SPMDBind(ior, phantom)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Invoke("phantom", nil); err == nil || !strings.Contains(err.Error(), "no operation") {
		t.Fatalf("err = %v", err)
	}
	b3, _ := orb.SPMDBind(ior, faultyIface())
	b3.Shutdown("done")
	wait()
}
