package poa_test

import (
	"fmt"
	"testing"

	"pardis/internal/core"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/nexus"
	"pardis/internal/poa"
	"pardis/internal/rts"
	"pardis/internal/simnet"
	"pardis/internal/vtime"
)

// TestSimFullStack runs the complete ORB path — SPMD client on one host,
// SPMD server on another, ATM-class link — under virtual time, and checks
// both correctness and that the modeled time is sensible.
func TestSimFullStack(t *testing.T) {
	sim := vtime.NewSim()
	fab := nexus.NewSimFabric(sim)
	tb := simnet.PaperTestbed()
	clientHost := tb.Host("onyx")
	serverHost := tb.Host("powerchallenge")
	fab.Connect("onyx", "powerchallenge", tb.Link("atm"))

	const S, C, N = 4, 2, 50_000
	serverG := rts.NewSimGroup(sim, serverHost, S)
	clientG := rts.NewSimGroup(sim, clientHost, C)

	iorCh := vtime.NewChan(sim, "ior")

	serverG.Spawn("server", func(th rts.Thread) {
		st := th.(*rts.SimThread)
		r := core.NewRouter(fab.NewEndpoint(fmt.Sprintf("srv%d", th.Rank()), st.Proc(), serverHost))
		p := poa.New(th, r, nil)
		p.PollInterval = 100e-6
		ior, err := p.RegisterSPMD("scaler-sim", scaleIface(), scaleServant{})
		if err != nil {
			panic(err)
		}
		if th.Rank() == 0 {
			for i := 0; i < C; i++ {
				st.Proc().Send(iorCh, ior, 0)
			}
		}
		p.ImplIsReady()
	})

	var clientElapsed vtime.Time
	clientG.Spawn("client", func(th rts.Thread) {
		st := th.(*rts.SimThread)
		r := core.NewRouter(fab.NewEndpoint(fmt.Sprintf("cli%d", th.Rank()), st.Proc(), clientHost))
		orb := core.NewORB(r, th, nil)
		ior := st.Proc().Recv(iorCh).(core.IOR)
		b, err := orb.SPMDBind(ior, scaleIface())
		if err != nil {
			panic(err)
		}
		x := dseq.New[float64](th, N, dist.BlockTemplate(), dseq.Float64Codec{})
		for loc := range x.Local() {
			x.Local()[loc] = 1
		}
		y := dseq.New[float64](th, 0, dist.BlockTemplate(), dseq.Float64Codec{})
		vals, err := b.Invoke("scale", []any{2.0, x, y})
		if err != nil {
			panic(err)
		}
		if vals[0] != float64(N) {
			panic(fmt.Sprintf("sum = %v", vals[0]))
		}
		yd := dseq.AsFloat64(vals[1].(dseq.Distributed))
		for _, v := range yd.Local() {
			if v != 2 {
				panic("bad element")
			}
		}
		th.Barrier()
		if th.Rank() == 0 {
			clientElapsed = st.Proc().Now()
			b.Shutdown("done")
		}
	})

	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// 2*N doubles cross a 155 Mb/s link: ≥ 2*8*N/19.375e6 s ≈ 41 ms,
	// and the whole exchange should stay well under a second.
	if clientElapsed < vtime.Milliseconds(40) {
		t.Fatalf("client elapsed %v — too fast for the modeled link", clientElapsed)
	}
	if clientElapsed > vtime.Seconds(1) {
		t.Fatalf("client elapsed %v — contention model exploded", clientElapsed)
	}
}

// TestSimLoopbackFasterThanRemote verifies the locality effect the paper's
// §4.1 bypass relies on: co-located client/server exchange beats the
// ATM-linked one for the same payload.
func TestSimLoopbackFasterThanRemote(t *testing.T) {
	run := func(colocated bool) vtime.Time {
		sim := vtime.NewSim()
		fab := nexus.NewSimFabric(sim)
		tb := simnet.PaperTestbed()
		serverHost := tb.Host("powerchallenge")
		clientHost := serverHost
		if !colocated {
			clientHost = tb.Host("onyx")
			fab.Connect("onyx", "powerchallenge", tb.Link("atm"))
		}
		const N = 100_000
		serverG := rts.NewSimGroup(sim, serverHost, 2)
		clientG := rts.NewSimGroup(sim, clientHost, 1)
		iorCh := vtime.NewChan(sim, "ior")
		serverG.Spawn("server", func(th rts.Thread) {
			st := th.(*rts.SimThread)
			r := core.NewRouter(fab.NewEndpoint("srv", st.Proc(), serverHost))
			p := poa.New(th, r, nil)
			p.PollInterval = 100e-6
			ior, _ := p.RegisterSPMD("sc", scaleIface(), scaleServant{})
			if th.Rank() == 0 {
				st.Proc().Send(iorCh, ior, 0)
			}
			p.ImplIsReady()
		})
		var elapsed vtime.Time
		clientG.Spawn("client", func(th rts.Thread) {
			st := th.(*rts.SimThread)
			r := core.NewRouter(fab.NewEndpoint("cli", st.Proc(), clientHost))
			orb := core.NewORB(r, th, nil)
			ior := st.Proc().Recv(iorCh).(core.IOR)
			b, _ := orb.SPMDBind(ior, scaleIface())
			x := dseq.New[float64](th, N, dist.BlockTemplate(), dseq.Float64Codec{})
			y := dseq.New[float64](th, 0, dist.BlockTemplate(), dseq.Float64Codec{})
			start := st.Proc().Now()
			if _, err := b.Invoke("scale", []any{1.0, x, y}); err != nil {
				panic(err)
			}
			elapsed = st.Proc().Now() - start
			b.Shutdown("done")
		})
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	local := run(true)
	remote := run(false)
	if local*2 >= remote {
		t.Fatalf("co-located %v should be far faster than remote %v", local, remote)
	}
}
