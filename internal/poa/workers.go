package poa

import (
	"sync"
	"sync/atomic"

	"pardis/internal/pgiop"
)

// localReq is one single-object request queued for dispatch, with the
// servant entry resolved at routing time so pool workers never touch the
// POA's object table concurrently with the owning thread. A zero entry
// (e == nil) is the retirement pill of the adaptive controller: the worker
// that dequeues it exits.
type localReq struct {
	e   *entry
	req *pgiop.Request
}

// dispatchPool pipelines single-object dispatch: ProcessRequests hands
// requests to the workers and keeps polling the transport, so independent
// requests from different clients execute concurrently and replies overlap
// with the next request's receive. SPMD collective dispatch never enters
// the pool — it stays on the agreement path of the POA thread.
//
// In auto mode (SetDispatchAuto) the worker count floats between min and
// max, steered by the POA thread against the pool's own depth signal — the
// same quantity the poa_dispatch_pool_depth gauge exports: sustained
// backlog grows the pool, sustained idleness shrinks it back. All resizing
// happens from the owning thread at the ProcessRequests safe point; growth
// spawns workers, shrinkage enqueues retirement pills.
type dispatchPool struct {
	reqs chan localReq
	wg   sync.WaitGroup

	// depth counts requests queued or executing in this pool (the local
	// twin of the process-wide gauge; a process may host several POAs).
	depth atomic.Int64

	// Auto-mode state, owned by the POA thread.
	auto     bool
	workers  int // current live worker target (pills in flight already deducted)
	min, max int
	idleFor  int // consecutive controller rounds with an empty, idle pool
}

// poolIdleRounds is how many consecutive idle ProcessRequests rounds the
// controller waits before halving the pool. Idle rounds are paced by the
// POA's poll interval (default 200µs), so the default shrink reaction is
// tens of milliseconds — far above any dispatch burst period.
const poolIdleRounds = 64

func newDispatchPool(p *POA, n, min, max int, auto bool) *dispatchPool {
	pl := &dispatchPool{
		reqs: make(chan localReq, 4*max),
		auto: auto, workers: n, min: min, max: max,
	}
	pl.spawn(p, n)
	poaPoolWorkers.Set(int64(n))
	return pl
}

func (pl *dispatchPool) spawn(p *POA, n int) {
	pl.wg.Add(n)
	for i := 0; i < n; i++ {
		go pl.run(p)
	}
}

func (pl *dispatchPool) run(p *POA) {
	defer pl.wg.Done()
	// Worker-private send scratch: replies from different workers are
	// independent vectored sends on a concurrency-safe fabric.
	var iov [2][]byte
	for lr := range pl.reqs {
		if lr.e == nil {
			return // retirement pill
		}
		p.serveSingle(lr.e, lr.req, &iov, true)
		p.admitted.Add(-1)
		pl.depth.Add(-1)
		poaPoolDepth.Add(-1)
	}
}

// tune is the auto-mode controller, called from ProcessRequests on the
// owning thread each round. Backlog beyond 2× the worker count means the
// pool is the bottleneck: double up to max. A pool that has been both
// empty and idle for poolIdleRounds consecutive rounds halves down to min,
// so a burst's worth of workers does not linger forever.
func (pl *dispatchPool) tune(p *POA) {
	d := int(pl.depth.Load())
	switch {
	case d > 2*pl.workers && pl.workers < pl.max:
		grow := pl.workers
		if pl.workers+grow > pl.max {
			grow = pl.max - pl.workers
		}
		pl.spawn(p, grow)
		pl.workers += grow
		pl.idleFor = 0
		poaPoolWorkers.Set(int64(pl.workers))
		poaPoolResizes.Inc()
	case d == 0 && pl.workers > pl.min:
		pl.idleFor++
		if pl.idleFor >= poolIdleRounds {
			pl.idleFor = 0
			shrink := pl.workers / 2
			if pl.workers-shrink < pl.min {
				shrink = pl.workers - pl.min
			}
			for i := 0; i < shrink; i++ {
				pl.reqs <- localReq{} // retirement pill
			}
			pl.workers -= shrink
			poaPoolWorkers.Set(int64(pl.workers))
			poaPoolResizes.Inc()
		}
	default:
		pl.idleFor = 0
	}
}

// SetDispatchWorkers gives the POA an opt-in worker pool of n goroutines
// for single-object dispatch, so independent requests from different
// clients execute concurrently while SPMD collective ordering stays on the
// agreement path (replies are matched by request ID, so out-of-order
// completion is safe). n <= 0 restores serial dispatch. The call is a no-op
// on fabrics whose sends are not safe for concurrent use (see
// Router.ConcurrentSendSafe). The width is pinned — see SetDispatchAuto
// for the self-sizing pool.
//
// Pooled dispatch imposes two rules the serial path does not: servants of
// single objects must be safe for concurrent invocation, and they cannot
// poll for further requests mid-computation (Context.POA is nil — the
// ProcessRequests reentry of the paper's §4.2 is a POA-thread affordance).
// Call from the POA's owning thread, outside ImplIsReady/ProcessRequests.
func (p *POA) SetDispatchWorkers(n int) {
	p.stopDispatchPool()
	if n <= 0 || !p.r.ConcurrentSendSafe() {
		return
	}
	p.pool = newDispatchPool(p, n, n, n, false)
}

// SetDispatchAuto gives the POA a self-sizing dispatch pool: the worker
// count starts at min and floats in [min, max], growing when the queue
// depth shows the pool is the bottleneck and shrinking after sustained
// idleness (see dispatchPool.tune). Pooled-dispatch servant rules apply
// exactly as for SetDispatchWorkers — which remains the pin-override for
// a fixed width. min is clamped to at least 1; max to at least min. No-op
// on fabrics without concurrency-safe sends.
func (p *POA) SetDispatchAuto(min, max int) {
	p.stopDispatchPool()
	if !p.r.ConcurrentSendSafe() {
		return
	}
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	p.pool = newDispatchPool(p, min, min, max, true)
}

// DispatchWorkers reports the pool's current worker count (0 = serial
// dispatch). Owning-thread read, like every pool operation.
func (p *POA) DispatchWorkers() int {
	if p.pool == nil {
		return 0
	}
	return p.pool.workers
}

// stopDispatchPool drains in-flight pooled dispatches and returns the POA
// to serial single-object dispatch.
func (p *POA) stopDispatchPool() {
	if p.pool == nil {
		return
	}
	close(p.pool.reqs)
	p.pool.wg.Wait()
	p.pool = nil
	poaPoolWorkers.Set(0)
}
