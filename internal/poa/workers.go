package poa

import (
	"sync"

	"pardis/internal/pgiop"
)

// localReq is one single-object request queued for dispatch, with the
// servant entry resolved at routing time so pool workers never touch the
// POA's object table concurrently with the owning thread.
type localReq struct {
	e   *entry
	req *pgiop.Request
}

// dispatchPool pipelines single-object dispatch: ProcessRequests hands
// requests to the workers and keeps polling the transport, so independent
// requests from different clients execute concurrently and replies overlap
// with the next request's receive. SPMD collective dispatch never enters
// the pool — it stays on the agreement path of the POA thread.
type dispatchPool struct {
	reqs chan localReq
	wg   sync.WaitGroup
}

func newDispatchPool(p *POA, n int) *dispatchPool {
	pl := &dispatchPool{reqs: make(chan localReq, 4*n)}
	pl.wg.Add(n)
	for i := 0; i < n; i++ {
		go pl.run(p)
	}
	return pl
}

func (pl *dispatchPool) run(p *POA) {
	defer pl.wg.Done()
	// Worker-private send scratch: replies from different workers are
	// independent vectored sends on a concurrency-safe fabric.
	var iov [2][]byte
	for lr := range pl.reqs {
		p.serveSingle(lr.e, lr.req, &iov, true)
		poaPoolDepth.Add(-1)
	}
}

// SetDispatchWorkers gives the POA an opt-in worker pool of n goroutines
// for single-object dispatch, so independent requests from different
// clients execute concurrently while SPMD collective ordering stays on the
// agreement path (replies are matched by request ID, so out-of-order
// completion is safe). n <= 0 restores serial dispatch. The call is a no-op
// on fabrics whose sends are not safe for concurrent use (see
// Router.ConcurrentSendSafe).
//
// Pooled dispatch imposes two rules the serial path does not: servants of
// single objects must be safe for concurrent invocation, and they cannot
// poll for further requests mid-computation (Context.POA is nil — the
// ProcessRequests reentry of the paper's §4.2 is a POA-thread affordance).
// Call from the POA's owning thread, outside ImplIsReady/ProcessRequests.
func (p *POA) SetDispatchWorkers(n int) {
	p.stopDispatchPool()
	if n <= 0 || !p.r.ConcurrentSendSafe() {
		return
	}
	p.pool = newDispatchPool(p, n)
}

// stopDispatchPool drains in-flight pooled dispatches and returns the POA
// to serial single-object dispatch.
func (p *POA) stopDispatchPool() {
	if p.pool == nil {
		return
	}
	close(p.pool.reqs)
	p.pool.wg.Wait()
	p.pool = nil
}
