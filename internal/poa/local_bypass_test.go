package poa_test

import (
	"sync/atomic"
	"testing"

	"pardis/internal/core"
	"pardis/internal/nexus"
)

// countingEP wraps an endpoint and counts outbound frames, so tests can
// assert whether an invocation touched the transport at all.
type countingEP struct {
	nexus.Endpoint
	sends atomic.Int64
}

func (c *countingEP) Send(to nexus.Addr, data []byte) error {
	c.sends.Add(1)
	return c.Endpoint.Send(to, data)
}

func (c *countingEP) SendV(to nexus.Addr, bufs ...[]byte) error {
	c.sends.Add(1)
	return c.Endpoint.SendV(to, bufs...)
}

// TestLocalBypassSendsNoFrames pins the paper's locality optimization as a
// transport-level guarantee: a co-located invocation through the shared
// LocalTable is a direct call and must emit zero frames on the client's
// endpoint. A control client without the table confirms the counter would
// have caught wire traffic.
func TestLocalBypassSendsNoFrames(t *testing.T) {
	fab := nexus.NewInproc()
	table := core.NewLocalTable()
	ior, _, wait := startSingleServer(t, fab, table)

	ep := &countingEP{Endpoint: fab.NewEndpoint("bypass-client")}
	orb := core.NewORB(core.NewRouter(ep), nil, table)
	b, err := orb.Bind(ior, echoIface())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		vals, err := b.Invoke("shout", []any{"local", nil})
		if err != nil || vals[0] != int32(5) || vals[1] != "LOCAL" {
			t.Fatalf("bypass vals = %v, %v", vals, err)
		}
	}
	if n := ep.sends.Load(); n != 0 {
		t.Fatalf("co-located invocations emitted %d transport frames, want 0", n)
	}

	// Control: the same invocation without the shared table must go over
	// the wire, proving the counter is actually on the request path.
	ctl := &countingEP{Endpoint: fab.NewEndpoint("wire-client")}
	worb := core.NewORB(core.NewRouter(ctl), nil, nil)
	wb, err := worb.Bind(ior, echoIface())
	if err != nil {
		t.Fatal(err)
	}
	if vals, err := wb.Invoke("shout", []any{"wire", nil}); err != nil || vals[1] != "WIRE" {
		t.Fatalf("wire vals = %v, %v", vals, err)
	}
	if n := ctl.sends.Load(); n == 0 {
		t.Fatal("control invocation sent no frames; counter is not observing the request path")
	}

	if err := wb.Shutdown("done"); err != nil {
		t.Fatal(err)
	}
	wait()
}
