package poa_test

import (
	"fmt"
	"os"
	"testing"
)

func TestMeasureRecoveryLatency(t *testing.T) {
	if os.Getenv("MEASURE") == "" {
		t.Skip("measurement run only")
	}
	for _, d := range []float64{0.05, 0.1, 0.2} {
		best := 1e9
		var all []float64
		for i := 0; i < 5; i++ {
			_, _, rec := runChaosScenario(t, 4, 2, 2, 64, d, 2*d)
			s := rec.Seconds()
			all = append(all, s)
			if s < best {
				best = s
			}
		}
		fmt.Printf("deadline %.0fms: recoveries %v\n", d*1000, all)
	}
}
