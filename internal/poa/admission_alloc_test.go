package poa

import (
	"testing"

	"pardis/internal/core"
	"pardis/internal/nexus"
	"pardis/internal/pgiop"
	"pardis/internal/rts"
)

// TestShedPathAllocs bounds the refusal path's allocation cost: shedding is
// what the adapter does when it is already saturated, so it must not spend
// allocations describing the refusal. The reply header is POA-owned
// scratch, the encoder is pooled and the reason is a constant — the only
// allocations left are the transport's own frame handoff.
func TestShedPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	fab := nexus.NewInproc()
	sink := fab.NewEndpoint("shed-sink")
	p := New(rts.NewChanGroup("shed-alloc", 1).Thread(0),
		core.NewRouter(fab.NewEndpoint("shed-server")), nil)
	p.SetAdmission(1, 0.01)

	req := &pgiop.Request{
		ReqID:     42,
		ReplyAddr: string(sink.Addr()),
		ObjectKey: "obj-1",
		Operation: "work",
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for i := 0; i < 200; i++ {
			if _, err := sink.Recv(); err != nil {
				return
			}
		}
	}()

	allocs := testing.AllocsPerRun(200, func() { p.shed(req) })
	// The inproc fabric copies each frame on Send (one alloc) and wraps it
	// in a queue node; everything the shed path itself touches is pooled.
	if allocs > 4 {
		t.Fatalf("shed path allocates %.1f objects per refusal, want <= 4", allocs)
	}
	<-drained
}
