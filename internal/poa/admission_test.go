package poa_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pardis/internal/core"
	"pardis/internal/nexus"
	"pardis/internal/poa"
	"pardis/internal/rts"
	"pardis/internal/typecode"
)

// blockOnceServant parks its first invocation on the gate; later
// invocations return immediately. It is the saturated-server fixture: while
// the first invocation holds the only dispatch worker, every further
// arrival is over the admission watermark.
type blockOnceServant struct {
	gate    chan struct{}
	entered chan struct{}
	once    sync.Once
	served  atomic.Int64
}

func (s *blockOnceServant) Invoke(ctx *poa.Context, op string, in []any) (any, []any, error) {
	first := false
	s.once.Do(func() { first = true })
	if first {
		close(s.entered)
		<-s.gate
	}
	s.served.Add(1)
	return int32(1), nil, nil
}

func admissionIface() *core.InterfaceDef {
	return &core.InterfaceDef{
		Name: "admission",
		Ops: []core.Operation{{
			Name:       "work",
			Params:     []core.Param{core.NewParam("x", core.In, typecode.TCLong)},
			Result:     typecode.TCLong,
			Idempotent: true,
		}},
	}
}

// startAdmissionServer runs a one-worker single-object server with the
// given admission watermark and returns its IOR, adapter and join func.
func startAdmissionServer(t *testing.T, fab *nexus.Inproc, srv poa.Servant, limit int, hint float64) (core.IOR, *poa.POA, func()) {
	t.Helper()
	g := rts.NewChanGroup("admission-host", 1)
	iorCh := make(chan core.IOR, 1)
	poaCh := make(chan *poa.POA, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := g.Thread(0)
		p := poa.New(th, core.NewRouter(fab.NewEndpoint("admission-server")), nil)
		p.PollInterval = 20e-6
		p.SetAdmission(limit, hint)
		ior, err := p.RegisterSingle("admission-1", admissionIface(), srv)
		if err != nil {
			t.Error(err)
			return
		}
		p.SetDispatchWorkers(1)
		iorCh <- ior
		poaCh <- p
		p.ImplIsReady()
	}()
	ior, p := <-iorCh, <-poaCh
	return ior, p, wg.Wait
}

// TestShedBoundedTime: a request over the admission watermark must be
// refused in transport time — with the shed carrying the configured hint —
// while the admitted request is still blocked inside the servant. No queue
// wait, no deadline wait.
func TestShedBoundedTime(t *testing.T) {
	fab := nexus.NewInproc()
	srv := &blockOnceServant{gate: make(chan struct{}), entered: make(chan struct{})}
	const hint = 0.02
	ior, p, wait := startAdmissionServer(t, fab, srv, 1, hint)

	// Occupy the only worker.
	var aDone atomic.Bool
	aErr := make(chan error, 1)
	go func() {
		orb := newClient(fab, nil)
		b, err := orb.Bind(ior, admissionIface())
		if err != nil {
			aErr <- err
			return
		}
		_, err = b.Invoke("work", []any{int32(1)})
		aDone.Store(true)
		aErr <- err
	}()
	<-srv.entered

	// The next request is over the watermark: expect an immediate shed.
	orb := newClient(fab, nil)
	b, err := orb.Bind(ior, admissionIface())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = b.Invoke("work", []any{int32(2)})
	elapsed := time.Since(start)

	var shed *core.ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("over-watermark invoke = %v, want *core.ShedError", err)
	}
	if shed.RetryAfter != hint {
		t.Fatalf("shed hint = %v, want %v", shed.RetryAfter, hint)
	}
	if !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("shed error does not unwrap to ErrOverloaded: %v", err)
	}
	// Bounded: the refusal arrived while the admitted request was still
	// blocked — the shed never waited behind it.
	if aDone.Load() {
		t.Fatal("admitted request finished before the shed came back: shed waited in queue")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("shed took %v, want transport time", elapsed)
	}
	if got := p.ShedCount(); got != 1 {
		t.Fatalf("ShedCount = %d, want 1", got)
	}

	close(srv.gate)
	if err := <-aErr; err != nil {
		t.Fatalf("admitted invocation failed: %v", err)
	}
	bShut, _ := newClient(fab, nil).Bind(ior, admissionIface())
	bShut.Shutdown("done")
	wait()
}

// TestClientBacksOffPerHint: a retry-armed client that is shed must not
// knock again before the server's RetryAfter hint has elapsed — the hint
// replaces the policy backoff, so the retry lands once the slot is free.
func TestClientBacksOffPerHint(t *testing.T) {
	fab := nexus.NewInproc()
	srv := &blockOnceServant{gate: make(chan struct{}), entered: make(chan struct{})}
	const hint = 0.05
	ior, p, wait := startAdmissionServer(t, fab, srv, 1, hint)

	aErr := make(chan error, 1)
	go func() {
		orb := newClient(fab, nil)
		b, err := orb.Bind(ior, admissionIface())
		if err != nil {
			aErr <- err
			return
		}
		_, err = b.Invoke("work", []any{int32(1)})
		aErr <- err
	}()
	<-srv.entered

	orb := newClient(fab, nil)
	b, err := orb.Bind(ior, admissionIface())
	if err != nil {
		t.Fatal(err)
	}
	b.SetDeadline(5)
	b.SetRetryPolicy(core.RetryPolicy{MaxAttempts: 2, BaseBackoff: 1e-3, JitterSeed: 7})

	done := make(chan struct{})
	var elapsed time.Duration
	var invErr error
	go func() {
		defer close(done)
		start := time.Now()
		_, invErr = b.Invoke("work", []any{int32(2)})
		elapsed = time.Since(start)
	}()

	// Once the first attempt has been shed, free the slot; the retry fires
	// after the hint and must succeed.
	for p.ShedCount() == 0 {
		time.Sleep(200 * time.Microsecond)
	}
	close(srv.gate)
	<-done

	if invErr != nil {
		t.Fatalf("retried invocation failed: %v", invErr)
	}
	if elapsed < time.Duration(0.8*hint*float64(time.Second)) {
		t.Fatalf("retry returned after %v, before the %.0fms hint elapsed", elapsed, hint*1000)
	}
	if got := p.ShedCount(); got != 1 {
		t.Fatalf("ShedCount = %d, want exactly 1 (the retry must not have been re-shed)", got)
	}
	if err := <-aErr; err != nil {
		t.Fatalf("admitted invocation failed: %v", err)
	}
	bShut, _ := newClient(fab, nil).Bind(ior, admissionIface())
	bShut.Shutdown("done")
	wait()
}

// TestOnewayShedIsDropped: oneway arrivals over the watermark are dropped
// without a reply — there is nobody to send the refusal to — and still
// count as sheds.
func TestOnewayShedIsDropped(t *testing.T) {
	fab := nexus.NewInproc()
	iface := &core.InterfaceDef{
		Name: "admission",
		Ops: []core.Operation{
			{Name: "work", Params: []core.Param{core.NewParam("x", core.In, typecode.TCLong)}, Result: typecode.TCLong, Idempotent: true},
			{Name: "fire", Params: []core.Param{core.NewParam("x", core.In, typecode.TCLong)}, Oneway: true},
		},
	}
	srv := &blockOnceServant{gate: make(chan struct{}), entered: make(chan struct{})}
	g := rts.NewChanGroup("oneway-host", 1)
	iorCh := make(chan core.IOR, 1)
	poaCh := make(chan *poa.POA, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := g.Thread(0)
		p := poa.New(th, core.NewRouter(fab.NewEndpoint("oneway-server")), nil)
		p.PollInterval = 20e-6
		p.SetAdmission(1, 0.01)
		ior, err := p.RegisterSingle("oneway-1", iface, srv)
		if err != nil {
			t.Error(err)
			return
		}
		p.SetDispatchWorkers(1)
		iorCh <- ior
		poaCh <- p
		p.ImplIsReady()
	}()
	ior, p := <-iorCh, <-poaCh

	aErr := make(chan error, 1)
	go func() {
		orb := newClient(fab, nil)
		b, err := orb.Bind(ior, iface)
		if err != nil {
			aErr <- err
			return
		}
		_, err = b.Invoke("work", []any{int32(1)})
		aErr <- err
	}()
	<-srv.entered

	orb := newClient(fab, nil)
	b, err := orb.Bind(ior, iface)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Invoke("fire", []any{int32(9)}); err != nil {
		t.Fatalf("oneway send errored: %v", err)
	}
	for p.ShedCount() == 0 {
		time.Sleep(200 * time.Microsecond)
	}

	close(srv.gate)
	if err := <-aErr; err != nil {
		t.Fatalf("admitted invocation failed: %v", err)
	}
	// Only the blocked invocation ran; the oneway was shed, not queued.
	if got := srv.served.Load(); got != 1 {
		t.Fatalf("served = %d, want 1 (dropped oneway must not execute)", got)
	}
	bShut, _ := newClient(fab, nil).Bind(ior, iface)
	bShut.Shutdown("done")
	wg.Wait()
}
