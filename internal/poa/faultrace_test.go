package poa_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pardis/internal/core"
	"pardis/internal/future"
	"pardis/internal/nexus"
	"pardis/internal/poa"
	"pardis/internal/rts"
)

// slowServant answers probe correctly but only after a fixed delay — the
// shape that makes replies race in after the client's deadline has fired.
type slowServant struct{ delay time.Duration }

func (s *slowServant) Invoke(_ *poa.Context, op string, in []any) (any, []any, error) {
	if op != "probe" {
		return nil, nil, fmt.Errorf("bad op %s", op)
	}
	time.Sleep(s.delay)
	return float64(in[0].(int32)) * 0.5, nil, nil
}

func startSlowServer(t *testing.T, fab *nexus.Inproc, delay time.Duration) (core.IOR, func()) {
	t.Helper()
	th := rts.NewChanGroup("slow-srv", 1).Thread(0)
	p := poa.New(th, core.NewRouter(fab.NewEndpoint("slow-server")), nil)
	p.PollInterval = 50e-6
	ior, err := p.RegisterSingle("slow-1", probeIface(), &slowServant{delay: delay})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.ImplIsReady()
	}()
	return ior, func() {
		orb := core.NewORB(core.NewRouter(fab.NewEndpoint("slow-stopper")), nil, nil)
		if b, err := orb.Bind(ior, probeIface()); err == nil {
			_ = b.Shutdown("race test done")
		}
		<-done
	}
}

// TestFaultTimeoutCancelReplyRace is the race-detector stress of the
// exactly-once resolution contract: short-deadline invocations time out (or
// are concurrently cancelled) while the slow server's replies stream in
// late. Every cell must resolve exactly once with a coherent outcome, the
// late replies must be discarded rather than matched to a newer request,
// and a final fresh invocation must still return the right value.
func TestFaultTimeoutCancelReplyRace(t *testing.T) {
	fab := nexus.NewInproc()
	ior, stop := startSlowServer(t, fab, 30*time.Millisecond)
	defer stop()

	orb := core.NewORB(core.NewRouter(fab.NewEndpoint("race-client")), nil, nil)
	b, err := orb.Bind(ior, probeIface())
	if err != nil {
		t.Fatal(err)
	}

	const rounds, perRound = 3, 8
	for round := 0; round < rounds; round++ {
		b.SetDeadline(0.008) // far shorter than the servant's delay
		cells := make([]*future.Cell, perRound)
		for i := range cells {
			c, err := b.InvokeNB("probe", []any{int32(i)})
			if err != nil {
				t.Fatal(err)
			}
			cells[i] = c
		}
		// Concurrent cancellation races the deadline sweep and the late
		// replies for ownership of every other cell.
		var wg sync.WaitGroup
		for i := 0; i < perRound; i += 2 {
			wg.Add(1)
			go func(c *future.Cell, n int) {
				defer wg.Done()
				time.Sleep(time.Duration(n) * time.Millisecond)
				orb.Cancel(c)
			}(cells[i], i)
		}
		for i, c := range cells {
			vals, err := c.Values()
			if err != nil {
				ok := errors.Is(err, core.ErrDeadline) || errors.Is(err, core.ErrCancelled)
				var ie *core.InvokeError
				if !ok && !errors.As(err, &ie) {
					t.Fatalf("round %d cell %d: unexpected failure %T: %v", round, i, err, err)
				}
			} else if vals[0] != float64(i)*0.5 {
				t.Fatalf("round %d cell %d: got %v, want %v — a stale reply was matched", round, i, vals[0], float64(i)*0.5)
			}
			// Second read must agree with the first: exactly-once resolution.
			vals2, err2 := c.Values()
			if (err == nil) != (err2 == nil) || (err == nil && vals[0] != vals2[0]) {
				t.Fatalf("round %d cell %d resolved twice: (%v,%v) then (%v,%v)", round, i, vals, err, vals2, err2)
			}
		}
		wg.Wait()
		// While the server is still draining the timed-out backlog, a fresh
		// generous invocation must match only its own (new) request id.
		b.SetDeadline(5)
		vals, err := b.Invoke("probe", []any{int32(100 + round)})
		if err != nil {
			t.Fatalf("round %d: fresh invocation failed: %v", round, err)
		}
		if want := float64(100+round) * 0.5; vals[0] != want {
			t.Fatalf("round %d: fresh invocation got %v, want %v — matched a recycled ReqID", round, vals[0], want)
		}
	}
}

// TestFaultFutureWaitTimeout pins the future-layer half of the robustness
// API: WaitTimeout returns false at the deadline with the cell unresolved
// and usable, then true once the result lands.
func TestFaultFutureWaitTimeout(t *testing.T) {
	fab := nexus.NewInproc()
	ior, stop := startSlowServer(t, fab, 50*time.Millisecond)
	defer stop()

	orb := core.NewORB(core.NewRouter(fab.NewEndpoint("wt-client")), nil, nil)
	b, err := orb.Bind(ior, probeIface())
	if err != nil {
		t.Fatal(err)
	}
	cell, err := b.InvokeNB("probe", []any{int32(8)})
	if err != nil {
		t.Fatal(err)
	}
	if cell.WaitTimeout(0.005) {
		t.Fatal("WaitTimeout(5ms) reported a 50ms invocation resolved")
	}
	if cell.Resolved() {
		t.Fatal("cell resolved before the servant could have answered")
	}
	if !cell.WaitTimeout(10) {
		t.Fatal("WaitTimeout never saw the reply")
	}
	vals, err := cell.Values()
	if err != nil || vals[0] != 4.0 {
		t.Fatalf("resolved cell = %v, %v", vals, err)
	}

	// A bare cell (no ORB pump) takes the cond-var path: the helper
	// goroutine must wake the waiter at the deadline, not park forever.
	bare := future.NewCell()
	start := time.Now()
	if bare.WaitTimeout(0.02) {
		t.Fatal("unresolved bare cell reported resolved")
	}
	if w := time.Since(start); w > 2*time.Second {
		t.Fatalf("bare WaitTimeout overshot: %v", w)
	}
	bare.Resolve([]any{int32(1)}, nil)
	if !bare.WaitTimeout(1) {
		t.Fatal("resolved bare cell reported unresolved")
	}
}
