package poa_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"pardis/internal/core"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/nexus"
	"pardis/internal/poa"
	"pardis/internal/rts"
)

// TestFullyDistributedTCPStack is the capstone integration: an SPMD server
// whose computing threads use the TCP run-time system (distinct address
// spaces) AND whose ORB endpoints are TCP, driven by a TCP SPMD client —
// every byte of the system crosses a socket.
func TestFullyDistributedTCPStack(t *testing.T) {
	if testing.Short() {
		t.Skip("full TCP stack; skipped with -short")
	}
	const S, C, N = 3, 2, 5000
	serverCoord := "127.0.0.1:39751"
	clientCoord := "127.0.0.1:39761"
	iorCh := make(chan core.IOR, 1)
	var wg sync.WaitGroup

	// --- Server program: S ranks over TCP RTS + TCP pgiop endpoints. ----
	for r := 0; r < S; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			th, err := rts.JoinTCP("server-host", rank, S, serverCoord, 10*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer th.Close()
			ep, err := nexus.NewTCPEndpoint("")
			if err != nil {
				t.Error(err)
				return
			}
			adapter := poa.New(th, core.NewRouter(ep), nil)
			adapter.PollInterval = 100e-6
			ior, err := adapter.RegisterSPMD("tcp-scaler", scaleIface(), scaleServant{})
			if err != nil {
				t.Error(err)
				return
			}
			if rank == 0 {
				iorCh <- ior
			}
			adapter.ImplIsReady()
		}(r)
	}
	ior := <-iorCh

	// --- Client program: C ranks over TCP RTS + TCP pgiop endpoints. ----
	var cwg sync.WaitGroup
	for r := 0; r < C; r++ {
		cwg.Add(1)
		go func(rank int) {
			defer cwg.Done()
			th, err := rts.JoinTCP("client-host", rank, C, clientCoord, 10*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer th.Close()
			ep, err := nexus.NewTCPEndpoint("")
			if err != nil {
				t.Error(err)
				return
			}
			orb := core.NewORB(core.NewRouter(ep), th, nil)
			b, err := orb.SPMDBind(ior, scaleIface())
			if err != nil {
				t.Error(err)
				return
			}
			x := dseq.New[float64](th, N, dist.BlockTemplate(), dseq.Float64Codec{})
			for i := range x.Local() {
				x.Local()[i] = float64(x.DLayout().GlobalIndex(th.Rank(), i))
			}
			y := dseq.New[float64](th, 0, dist.BlockTemplate(), dseq.Float64Codec{})
			vals, err := b.Invoke("scale", []any{2.0, x, y})
			if err != nil {
				t.Error(err)
				return
			}
			wantSum := float64(N*(N-1)) / 2
			if vals[0] != wantSum {
				t.Errorf("rank %d: sum = %v, want %v", rank, vals[0], wantSum)
			}
			yd := dseq.AsFloat64(vals[1].(dseq.Distributed))
			for i, v := range yd.Local() {
				g := yd.DLayout().GlobalIndex(th.Rank(), i)
				if v != 2*float64(g) {
					t.Errorf("rank %d: y[%d] = %v", rank, g, v)
					break
				}
			}
			th.Barrier()
			if rank == 0 {
				if err := b.Shutdown(fmt.Sprintf("done after %d elements", N)); err != nil {
					t.Error(err)
				}
			}
		}(r)
	}
	cwg.Wait()
	wg.Wait()
}
