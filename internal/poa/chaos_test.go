package poa_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pardis/internal/core"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/nexus"
	"pardis/internal/obs/leaktest"
	"pardis/internal/poa"
	"pardis/internal/rts"
	"pardis/internal/typecode"
)

// chaosIface: one SPMD operation with a distributed in and a distributed
// out — the shape whose transfer a dying rank interrupts.
func chaosIface() *core.InterfaceDef {
	dv := typecode.DSequenceOf(typecode.TCDouble, 0, "BLOCK", "BLOCK")
	return &core.InterfaceDef{
		Name: "chaos",
		Ops: []core.Operation{{
			Name: "double",
			Params: []core.Param{
				core.NewParam("x", core.In, dv),
				core.NewParam("y", core.Out, dv),
			},
			Result: typecode.TCDouble,
		}},
	}
}

// chaosServant doubles its local elements — except on the victim rank,
// which kills its own network address and parks forever, mid-transfer:
// after the collective argument collection, before its out segments ship.
// No internal collectives, so sibling threads finish their dispatch and the
// death must be caught by the POA's own agreement liveness, not by the
// application.
type chaosServant struct {
	fi       *nexus.FaultInjector
	victim   int
	addrs    []nexus.Addr // per-rank POA endpoint address
	gate     chan struct{}
	killed   chan struct{}
	killedAt time.Time
	once     sync.Once
}

func (s *chaosServant) Invoke(ctx *poa.Context, op string, in []any) (any, []any, error) {
	th := ctx.Thread
	if op != "double" {
		return nil, nil, fmt.Errorf("bad op %s", op)
	}
	x := dseq.AsFloat64(in[0].(dseq.Distributed))
	if th.Rank() == s.victim {
		s.fi.Kill(s.addrs[th.Rank()])
		s.once.Do(func() {
			s.killedAt = time.Now()
			close(s.killed)
		})
		<-s.gate // the rank is gone; only the test's teardown frees it
		return nil, nil, errors.New("unreachable")
	}
	y := dseq.NewFromLayout[float64](th, x.DLayout(), dseq.Float64Codec{})
	for i, v := range x.Local() {
		y.Local()[i] = 2 * v
	}
	return 1.0, []any{y}, nil
}

// runChaosScenario is the acceptance demo: an S-rank SPMD server loses its
// victim rank mid-transfer under a C-rank client invocation with a
// deadline. It returns each client rank's invocation error (nil = resolved
// clean), each server rank's Fault, and the wall time from the kill to the
// last survivor's ImplIsReady return.
func runChaosScenario(t *testing.T, S, C, victim int, N int, agreementDeadline, clientDeadline float64) (clientErrs []error, faults []error, recovery time.Duration) {
	t.Helper()
	fab := nexus.NewInproc()
	fi := nexus.NewFaultInjector(99, nexus.FaultPlan{})
	servant := &chaosServant{
		fi: fi, victim: victim,
		addrs:  make([]nexus.Addr, S),
		gate:   make(chan struct{}),
		killed: make(chan struct{}),
	}
	faults = make([]error, S)
	returned := make([]time.Time, S)
	iorCh := make(chan core.IOR, 1)
	var swg sync.WaitGroup
	swg.Add(1)
	var survivorWG sync.WaitGroup
	survivorWG.Add(S - 1)
	go func() {
		defer swg.Done()
		rts.NewChanGroup("chaos-srv", S).Run(func(th rts.Thread) {
			ep := fab.NewEndpoint(fmt.Sprintf("chaos-s%d", th.Rank()))
			servant.addrs[th.Rank()] = ep.Addr()
			p := poa.New(th, core.NewRouter(fi.Wrap(ep)), nil)
			p.PollInterval = 50e-6
			p.AgreementDeadline = agreementDeadline
			ior, err := p.RegisterSPMD("chaos-1", chaosIface(), servant)
			if err != nil {
				t.Error(err)
				return
			}
			if th.Rank() == 0 {
				iorCh <- ior
			}
			p.ImplIsReady()
			if th.Rank() != victim {
				faults[th.Rank()] = p.Fault()
				returned[th.Rank()] = time.Now()
				survivorWG.Done()
			}
		})
	}()
	ior := <-iorCh

	clientErrs = make([]error, C)
	rts.NewChanGroup("chaos-cli", C).Run(func(th rts.Thread) {
		orb := core.NewORB(core.NewRouter(fab.NewEndpoint(fmt.Sprintf("chaos-c%d", th.Rank()))), th, nil)
		b, err := orb.SPMDBind(ior, chaosIface())
		if err != nil {
			clientErrs[th.Rank()] = err
			return
		}
		b.SetDeadline(clientDeadline)
		x := dseq.New[float64](th, N, dist.BlockTemplate(), dseq.Float64Codec{})
		for i := range x.Local() {
			x.Local()[i] = float64(x.DLayout().GlobalIndex(th.Rank(), i))
		}
		y := dseq.New[float64](th, 0, dist.BlockTemplate(), dseq.Float64Codec{})
		_, err = b.Invoke("double", []any{x, y})
		clientErrs[th.Rank()] = err
	})

	<-servant.killed
	killedAt := servant.killedAt
	sdone := make(chan struct{})
	go func() { survivorWG.Wait(); close(sdone) }()
	select {
	case <-sdone:
	case <-time.After(20 * time.Second):
		t.Fatal("deadlock: surviving server ranks never returned from ImplIsReady")
	}
	last := killedAt
	for r, at := range returned {
		if r != victim && at.After(last) {
			last = at
		}
	}
	// Free the parked victim so the whole server program joins.
	close(servant.gate)
	swg.Wait()
	return clientErrs, faults, last.Sub(killedAt)
}

// TestFaultChaosDeadRankMidTransfer is the ISSUE's acceptance scenario: a
// 4-rank SPMD invocation with rank 2 killed mid-transfer. Every surviving
// server rank must report a Fault naming rank 2 within ~2× the agreement
// deadline, the client rank owed data by the corpse must get a
// rank-attributed InvokeError, nothing may deadlock, and no goroutines may
// leak.
func TestFaultChaosDeadRankMidTransfer(t *testing.T) {
	baseline := leaktest.Baseline()
	const S, C, victim, N = 4, 2, 2, 64
	const agreement, clientDeadline = 0.25, 0.5

	clientErrs, faults, recovery := runChaosScenario(t, S, C, victim, N, agreement, clientDeadline)

	// Server side: all survivors hold a structured Fault naming the victim.
	for r, err := range faults {
		if r == victim {
			continue
		}
		var f *poa.Fault
		if !errors.As(err, &f) {
			t.Fatalf("server rank %d: Fault() = %v, want *poa.Fault", r, err)
		}
		if f.Rank != victim {
			t.Fatalf("server rank %d blamed rank %d, want %d (%v)", r, f.Rank, victim, f)
		}
	}
	// Recovery bound: survivors noticed and returned within 2× the
	// agreement deadline (plus scheduler slack).
	if limit := time.Duration((2*agreement + 0.75) * float64(time.Second)); recovery > limit {
		t.Fatalf("survivors took %v after the kill, want under %v", recovery, limit)
	}

	// Client side: with BLOCK/BLOCK layouts (N=64, S=4, C=2) the victim's
	// elements [32,48) all map to client rank 1, which must time out with
	// the victim attributed; client rank 0's data never touches the victim
	// and resolves clean.
	if clientErrs[0] != nil {
		t.Fatalf("client rank 0 owed nothing by the victim, got %v", clientErrs[0])
	}
	var ie *core.InvokeError
	if !errors.As(clientErrs[1], &ie) {
		t.Fatalf("client rank 1: %v, want *core.InvokeError", clientErrs[1])
	}
	found := false
	for _, r := range ie.MissingRanks {
		if r == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("client rank 1: MissingRanks = %v, want to include %d (%v)", ie.MissingRanks, victim, ie)
	}

	leaktest.Check(t, baseline)
}

// TestFaultChaosSoak is the seeded soak lane (ci runs it with -count=20):
// each iteration runs the lossy-network matrix cell for a few pinned seeds
// plus one dead-rank scenario, and then checks nothing leaked. Fixed seeds
// keep every iteration's injection schedule reproducible.
func TestFaultChaosSoak(t *testing.T) {
	baseline := leaktest.Baseline()
	fab := func() epFactory {
		f := nexus.NewInproc()
		return func(name string) (nexus.Endpoint, error) { return f.NewEndpoint(name), nil }
	}
	for _, seed := range []uint64{11, 29, 47} {
		runFaultMatrixCell(t, fab(), nexus.FaultPlan{Drop: 0.15, Delay: 0.15, Dup: 0.1, Truncate: 0.1}, seed)
	}
	clientErrs, faults, _ := runChaosScenario(t, 3, 1, 1, 48, 0.15, 0.3)
	for r, err := range faults {
		if r == 1 {
			continue
		}
		var f *poa.Fault
		if !errors.As(err, &f) || f.Rank != 1 {
			t.Fatalf("soak: server rank %d fault = %v, want *poa.Fault{Rank: 1}", r, err)
		}
	}
	var ie *core.InvokeError
	if !errors.As(clientErrs[0], &ie) {
		t.Fatalf("soak: client error = %v, want *core.InvokeError", clientErrs[0])
	}
	leaktest.Check(t, baseline)
}
