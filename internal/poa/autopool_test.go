package poa_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"pardis/internal/core"
	"pardis/internal/nexus"
	"pardis/internal/poa"
	"pardis/internal/rts"
)

// TestAutoDispatchPoolGrowsAndShrinks drives the self-sizing dispatch pool
// through its whole regime: it starts at min, doubles under a sustained
// backlog of slow single-object invocations, and decays back to min after
// the idle window — all observed from the POA's owning thread, where every
// pool operation lives. Run under -race this also exercises the
// retirement-pill shutdown of surplus workers.
func TestAutoDispatchPoolGrowsAndShrinks(t *testing.T) {
	const clients, calls, maxWorkers = 12, 4, 8
	fab := nexus.NewInproc()
	g := rts.NewChanGroup("auto-host", 1)
	iorCh := make(chan core.IOR, 1)
	srv := &gaugeServant{}
	done := make(chan struct{})
	var peak, final atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := g.Thread(0)
		r := core.NewRouter(fab.NewEndpoint("auto-server"))
		p := poa.New(th, r, nil)
		p.PollInterval = 20e-6
		ior, err := p.RegisterSingle("gauge-3", gaugeIface(), srv)
		if err != nil {
			t.Error(err)
			return
		}
		p.SetDispatchAuto(1, maxWorkers)
		if got := p.DispatchWorkers(); got != 1 {
			t.Errorf("auto pool started with %d workers, want min=1", got)
		}
		iorCh <- ior
		idle := 0
		for {
			select {
			case <-done:
				idle++
			default:
			}
			p.ProcessRequests()
			if n := int64(p.DispatchWorkers()); n > peak.Load() {
				peak.Store(n)
			}
			// Give the controller ample empty rounds past its idle window so
			// every halving step (max -> ... -> min) can fire.
			if idle > 600 {
				break
			}
			th.Sleep(p.PollInterval)
		}
		final.Store(int64(p.DispatchWorkers()))
		p.SetDispatchWorkers(0)
	}()
	ior := <-iorCh

	var clientWG sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		clientWG.Add(1)
		go func(c int) {
			defer clientWG.Done()
			orb := newClient(fab, nil)
			b, err := orb.Bind(ior, gaugeIface())
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < calls; i++ {
				msg := fmt.Sprintf("c%d-i%d", c, i)
				vals, err := b.Invoke("hold", []any{msg, nil})
				if err != nil {
					errs <- fmt.Errorf("client %d call %d: %v", c, i, err)
					return
				}
				if vals[0] != int32(len(msg)) || vals[1] != msg {
					errs <- fmt.Errorf("client %d call %d got %v", c, i, vals)
					return
				}
			}
		}(c)
	}
	clientWG.Wait()
	close(done)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := srv.served.Load(); got != clients*calls {
		t.Fatalf("served %d of %d invocations", got, clients*calls)
	}
	// Twelve 1ms-holding clients against one starting worker must back the
	// queue up past the 2x growth threshold.
	if peak.Load() < 2 {
		t.Fatalf("pool peaked at %d workers; controller never grew", peak.Load())
	}
	if final.Load() != 1 {
		t.Fatalf("pool settled at %d workers after idling, want min=1", final.Load())
	}
	if srv.peak.Load() < 2 {
		t.Fatalf("peak servant concurrency %d; grown pool did not pipeline", srv.peak.Load())
	}
}
