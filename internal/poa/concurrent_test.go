package poa_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pardis/internal/core"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/nexus"
	"pardis/internal/poa"
	"pardis/internal/rts"
	"pardis/internal/typecode"
)

// gaugeServant counts how many invocations are in flight at once — the
// observable difference between serial and pipelined dispatch.
type gaugeServant struct {
	inflight atomic.Int64
	peak     atomic.Int64
	served   atomic.Int64
}

func (s *gaugeServant) Invoke(ctx *poa.Context, op string, in []any) (any, []any, error) {
	cur := s.inflight.Add(1)
	for {
		p := s.peak.Load()
		if cur <= p || s.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	time.Sleep(time.Millisecond) // hold the slot so overlap is observable
	s.inflight.Add(-1)
	s.served.Add(1)
	return int32(len(in[0].(string))), []any{in[0].(string)}, nil
}

func gaugeIface() *core.InterfaceDef {
	return &core.InterfaceDef{
		Name: "gauge",
		Ops: []core.Operation{{
			Name: "hold",
			Params: []core.Param{
				core.NewParam("s", core.In, typecode.TCString),
				core.NewParam("echo", core.Out, typecode.TCString),
			},
			Result: typecode.TCLong,
		}},
	}
}

// TestPooledDispatchManyClients hammers one single object from many client
// goroutines with the dispatch pool enabled: every reply must match its
// request (completion is out of order), and the gauge must observe real
// overlap. Run under -race this also exercises the pool's sharing rules.
func TestPooledDispatchManyClients(t *testing.T) {
	const clients, calls, workers = 8, 6, 4
	fab := nexus.NewInproc()
	g := rts.NewChanGroup("pool-host", 1)
	iorCh := make(chan core.IOR, 1)
	srv := &gaugeServant{}
	var serverWG sync.WaitGroup
	serverWG.Add(1)
	go func() {
		defer serverWG.Done()
		th := g.Thread(0)
		r := core.NewRouter(fab.NewEndpoint("pool-server"))
		p := poa.New(th, r, nil)
		p.PollInterval = 20e-6
		ior, err := p.RegisterSingle("gauge-1", gaugeIface(), srv)
		if err != nil {
			t.Error(err)
			return
		}
		p.SetDispatchWorkers(workers)
		iorCh <- ior
		p.ImplIsReady()
	}()
	ior := <-iorCh

	var clientWG sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		clientWG.Add(1)
		go func(c int) {
			defer clientWG.Done()
			orb := newClient(fab, nil)
			b, err := orb.Bind(ior, gaugeIface())
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < calls; i++ {
				msg := fmt.Sprintf("c%d-i%d", c, i)
				vals, err := b.Invoke("hold", []any{msg, nil})
				if err != nil {
					errs <- fmt.Errorf("client %d call %d: %v", c, i, err)
					return
				}
				if vals[0] != int32(len(msg)) || vals[1] != msg {
					errs <- fmt.Errorf("client %d call %d got %v", c, i, vals)
					return
				}
			}
		}(c)
	}
	clientWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	orb := newClient(fab, nil)
	b, _ := orb.Bind(ior, gaugeIface())
	if err := b.Shutdown("done"); err != nil {
		t.Fatal(err)
	}
	serverWG.Wait()
	if got := srv.served.Load(); got != clients*calls {
		t.Fatalf("served %d of %d invocations", got, clients*calls)
	}
	// Eight clients block on a four-worker pool holding each slot 1ms;
	// dispatch that never overlaps would leave the peak at 1.
	if srv.peak.Load() < 2 {
		t.Fatalf("peak concurrency %d; dispatch pool did not pipeline", srv.peak.Load())
	}
}

// axpyIface carries two distributed in-arguments and one distributed out,
// so one invocation drives three independent segment streams per
// (binding, seqno, param) key.
func axpyIface() *core.InterfaceDef {
	dv := typecode.DSequenceOf(typecode.TCDouble, 0, "BLOCK", "BLOCK")
	return &core.InterfaceDef{
		Name: "axpy",
		Ops: []core.Operation{{
			Name: "axpy",
			Params: []core.Param{
				core.NewParam("k", core.In, typecode.TCDouble),
				core.NewParam("x", core.In, dv),
				core.NewParam("y", core.In, dv),
				core.NewParam("z", core.Out, dv),
			},
		}},
	}
}

type axpyServant struct{}

func (axpyServant) Invoke(ctx *poa.Context, op string, in []any) (any, []any, error) {
	k := in[0].(float64)
	x := dseq.AsFloat64(in[1].(dseq.Distributed))
	y := dseq.AsFloat64(in[2].(dseq.Distributed))
	z := dseq.NewFromLayout[float64](ctx.Thread, x.DLayout(), dseq.Float64Codec{})
	for i, v := range x.Local() {
		z.Local()[i] = k*v + y.Local()[i]
	}
	return nil, []any{z}, nil
}

// TestParallelTransferInterleavedStreams runs an SPMD axpy with the
// parallel fan-out enabled on both sides, so segments of the two in
// parameters and the out parameter interleave across every client/server
// thread pair. Distinct (binding, seqno, param) streams must reassemble
// independently; repeated invocations reuse the schedule cache.
func TestParallelTransferInterleavedStreams(t *testing.T) {
	const N, S, C = 257, 4, 3
	fab := nexus.NewInproc()
	serverG := rts.NewChanGroup("axpy-srv", S)
	clientG := rts.NewChanGroup("axpy-cli", C)
	iorCh := make(chan core.IOR, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		serverG.Run(func(th rts.Thread) {
			r := core.NewRouter(fab.NewEndpoint(fmt.Sprintf("asrv%d", th.Rank())))
			p := poa.New(th, r, nil)
			p.PollInterval = 20e-6
			p.TransferWorkers = 4
			ior, err := p.RegisterSPMD("axpy-1", axpyIface(), axpyServant{})
			if err != nil {
				t.Error(err)
				return
			}
			if th.Rank() == 0 {
				iorCh <- ior
			}
			p.ImplIsReady()
		})
	}()
	ior := <-iorCh
	clientG.Run(func(th rts.Thread) {
		r := core.NewRouter(fab.NewEndpoint(fmt.Sprintf("acli%d", th.Rank())))
		orb := core.NewORB(r, th, nil)
		orb.TransferWorkers = 4
		b, err := orb.SPMDBind(ior, axpyIface())
		if err != nil {
			t.Error(err)
			return
		}
		for round := 0; round < 3; round++ {
			x := dseq.New[float64](th, N, dist.BlockTemplate(), dseq.Float64Codec{})
			y := dseq.New[float64](th, N, dist.BlockTemplate(), dseq.Float64Codec{})
			for loc := range x.Local() {
				g := float64(x.Layout().GlobalIndex(th.Rank(), loc))
				x.Local()[loc] = g
				y.Local()[loc] = 1000 * g
			}
			z := dseq.New[float64](th, 0, dist.BlockTemplate(), dseq.Float64Codec{})
			vals, err := b.Invoke("axpy", []any{2.0, x, y, z})
			if err != nil {
				panic(err)
			}
			zd := dseq.AsFloat64(vals[0].(dseq.Distributed))
			for loc, v := range zd.Local() {
				g := float64(zd.DLayout().GlobalIndex(th.Rank(), loc))
				if want := 2*g + 1000*g; v != want {
					panic(fmt.Sprintf("round %d: z[%v] = %v, want %v", round, g, v, want))
				}
			}
		}
		th.Barrier()
		if th.Rank() == 0 {
			b.Shutdown("done")
		}
	})
	wg.Wait()
}

// TestSetDispatchWorkersRestoresSerial flips the pool on and off around
// invocations; both modes must serve correctly from the same POA.
func TestSetDispatchWorkersRestoresSerial(t *testing.T) {
	fab := nexus.NewInproc()
	g := rts.NewChanGroup("toggle-host", 1)
	iorCh := make(chan core.IOR, 1)
	phase := make(chan int) // test -> server: next worker count, closed to stop
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := g.Thread(0)
		r := core.NewRouter(fab.NewEndpoint("toggle-server"))
		p := poa.New(th, r, nil)
		p.PollInterval = 20e-6
		ior, err := p.RegisterSingle("gauge-2", gaugeIface(), &gaugeServant{})
		if err != nil {
			t.Error(err)
			return
		}
		iorCh <- ior
		for {
			select {
			case n, ok := <-phase:
				if !ok {
					p.SetDispatchWorkers(0)
					return
				}
				p.SetDispatchWorkers(n)
			default:
			}
			p.ProcessRequests()
			th.Sleep(p.PollInterval)
		}
	}()
	ior := <-iorCh
	orb := newClient(fab, nil)
	b, err := orb.Bind(ior, gaugeIface())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 0, 3} {
		phase <- n
		vals, err := b.Invoke("hold", []any{"toggle", nil})
		if err != nil || vals[1] != "toggle" {
			t.Fatalf("workers=%d: %v, %v", n, vals, err)
		}
	}
	close(phase)
	wg.Wait()
}
