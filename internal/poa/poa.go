// Package poa implements PARDIS' server-side object adapter: servant
// registration for single and SPMD objects, the ImplIsReady dispatch loop
// and the ProcessRequests mid-computation poll (both collective with
// respect to all computing threads of the server, as the paper requires),
// and direct parallel reception/transmission of distributed arguments.
//
// # Collective dispatch
//
// An SPMD invocation is accepted only when every client thread has issued
// it. All request headers arrive at server thread 0, which gathers them per
// (binding, sequence number); once per polling round thread 0 packs every
// completed set's dispatch decision into a single agreement frame and
// broadcasts it once through the server's run-time system (a log-depth
// tree), so every computing thread dequeues requests in the identical
// order — the ordering guarantee of §2.1 at one broadcast of latency per
// phase regardless of how many invocations completed. Threads then collect their in-argument segments
// (which client threads sent them directly), run the servant collectively,
// ship out-argument segments directly to the client threads, and thread 0
// completes the invocation with per-thread replies.
//
// Single objects are dispatched locally by their owning thread with no
// collective machinery, which is what allows the distributed list-server
// placement of the paper's Figure 4 to parallelize client queries.
package poa

import (
	"fmt"
	"sync/atomic"
	"time"

	"pardis/internal/core"
	"pardis/internal/dist"
	"pardis/internal/nexus"
	"pardis/internal/obs"
	"pardis/internal/pgiop"
	"pardis/internal/rts"
)

// Servant is an object implementation. For SPMD objects every computing
// thread holds a servant instance and Invoke is called collectively on all
// of them; distributed in-arguments arrive as dseq.Distributed values
// already holding the thread's local portion, and distributed out values
// must be returned as dseq.Distributed with their server-side layout.
// outs has one entry per out/inout parameter, in declaration order.
type Servant interface {
	Invoke(ctx *Context, op string, in []any) (ret any, outs []any, err error)
}

// ServantFunc adapts a function to the Servant interface.
type ServantFunc func(ctx *Context, op string, in []any) (any, []any, error)

// Invoke implements Servant.
func (f ServantFunc) Invoke(ctx *Context, op string, in []any) (any, []any, error) {
	return f(ctx, op, in)
}

// Context is passed to servant invocations.
type Context struct {
	// Thread is the computing thread's run-time-system context.
	Thread rts.Thread
	// POA lets a servant poll for further requests during a long
	// computation — POA::process_requests() in the paper's §4.2.
	POA *POA
	// Oneway reports that no reply will be sent.
	Oneway bool
}

type entry struct {
	iface   *core.InterfaceDef
	servant Servant
	spmd    bool
}

type invKey struct {
	binding string
	seq     uint32
}

type segKey struct {
	binding string
	seq     uint32
	param   int32
}

// clientInfo is one client thread's identity for an invocation.
type clientInfo struct {
	Rank  int32
	ReqID uint32
	Addr  string
}

type gather struct {
	reqs map[int32]*pgiop.Request
}

// POA is one computing thread's server-side adapter. An SPMD server
// creates one POA per thread over the thread's router and communicator;
// registration and dispatch calls are collective across them.
type POA struct {
	th    rts.Thread
	r     *core.Router
	local *core.LocalTable

	objects map[string]*entry

	// Thread 0 only: header gathering and the ready queue.
	gathers map[invKey]*gather
	ready   []invKey

	localQ          []localReq // single-object requests for this thread
	segs            map[segKey][]*pgiop.ArgStream
	shutdown        bool
	pendingShutdown bool
	fault           error // unrecoverable agreement failure (see faultCollective)

	// pool, when non-nil, pipelines single-object dispatch across worker
	// goroutines (see SetDispatchWorkers). SPMD dispatch never uses it.
	pool *dispatchPool

	// Admission control (see SetAdmission): admitted counts single-object
	// requests accepted but not yet finished — queued in localQ, queued to
	// the pool, or executing. It is atomic (not owning-thread state) because
	// pool workers decrement it and LoadReport reads it from heartbeat
	// goroutines. shedScratch is the reusable shed reply header, touched
	// only from the owning thread at routing time.
	admitLimit  int
	shedHintMS  uint32
	admitted    atomic.Int64
	shedCount   atomic.Uint64
	shedScratch pgiop.Reply

	// loadLat is the adapter's own single-object dispatch latency histogram
	// — the per-replica load signal LoadReport exports, kept separate from
	// the process-wide poa_dispatch_latency_seconds so co-hosted replicas
	// report their own saturation, not each other's.
	loadLat obs.Histogram

	// ctx is the reusable invocation context handed to servants: it is
	// valid only for the duration of one Invoke call (saved and restored
	// around nested dispatch from ProcessRequests), so servants must not
	// retain it. sendIov is the scratch buffer list for two-buffer
	// vectored sends; runScratch is the decoded-run scratch reused across
	// incoming segments. All are safe as fields because they are touched
	// only from the owning thread (pool workers carry private scratch).
	ctx        Context
	sendIov    [2][]byte
	runScratch []dist.Run

	// PollInterval is the idle wait inside ImplIsReady, seconds. On
	// fabrics with arrival notification (nexus.RecvNotifier) it is only
	// the upper bound: the idle wait wakes as soon as a frame lands.
	PollInterval float64

	// wake, when non-nil, is signalled by the transport on frame arrival
	// (see New); idleTimer is the reusable bound on each event-driven wait.
	wake      chan struct{}
	idleTimer *time.Timer

	// AgreementDeadline, when > 0, bounds the per-round collective dispatch
	// agreement and adds a liveness barrier to it, so the abrupt death of
	// any sibling computing thread surfaces as a rank-attributed Fault on
	// every survivor (within about 2× the deadline) instead of a hang. It
	// must be set well above PollInterval: threads enter the agreement up
	// to one polling interval apart, and a deadline inside that skew would
	// fault a healthy server. Collective: every thread must set the same
	// value. 0 (the default) keeps the unbounded wait.
	AgreementDeadline float64

	// CollectDeadline, when > 0, bounds the wait for distributed
	// in-argument segments of requests that carry no deadline of their own
	// (a request's wire deadline takes precedence). A collection that times
	// out fails the invocation with an exception naming the client ranks
	// whose segments never arrived — the adapter itself stays dispatchable.
	CollectDeadline float64

	// peers holds every computing thread's router address (from the
	// RegisterSPMD all-gather), the notification fan-out for faults.
	peers []string

	// TransferWorkers is the fan-out width for shipping distributed
	// out-argument segments to client threads: > 0 pins the width, 0 (the
	// default) self-tunes it per destination count and payload size
	// (core.FanWidth), negative forces the serial path. Widths above 1
	// take effect only on fabrics whose sends are concurrency-safe
	// (Router.ConcurrentSendSafe).
	TransferWorkers int

	// StreamChunkBytes bounds the payload bytes per ArgStream frame of one
	// distributed out-argument move: > 0 pins the chunk size, 0 (the
	// default) self-tunes it per destination count and payload size on
	// concurrency-safe fabrics (fixed default size elsewhere), negative
	// disables chunking and ships each move as one staged frame
	// (core.StreamChunk).
	StreamChunkBytes int
}

// New creates the adapter for one computing thread. table (optional)
// receives direct-call registrations for single objects, enabling the
// co-located bypass.
func New(th rts.Thread, r *core.Router, table *core.LocalTable) *POA {
	p := &POA{
		th:           th,
		r:            r,
		local:        table,
		objects:      map[string]*entry{},
		gathers:      map[invKey]*gather{},
		segs:         map[segKey][]*pgiop.ArgStream{},
		PollInterval: 200e-6,
	}
	// Event-driven idle wakeup: on fabrics that can signal frame arrival,
	// an idle poll loop parks on this channel instead of sleeping blind,
	// so request latency under light load is arrival-bound rather than
	// PollInterval-bound — and a server of many channels no longer pays a
	// full per-interval scan to notice one busy endpoint. Fabrics without
	// the capability (notably Sim, whose virtual clock only advances
	// through Thread.Sleep) keep the plain polling sleep.
	wake := make(chan struct{}, 1)
	if r != nil && r.SetRecvNotify(func() {
		select {
		case wake <- struct{}{}:
		default:
		}
	}) {
		p.wake = wake
	}
	return p
}

// idleWait parks the thread until a frame arrives or PollInterval elapses,
// whichever is first — never longer than the plain polling sleep, so every
// deadline argument built on polling cadence (AgreementDeadline skew,
// CollectDeadline) holds unchanged.
func (p *POA) idleWait() {
	if p.wake == nil {
		p.th.Sleep(p.PollInterval)
		return
	}
	d := time.Duration(p.PollInterval * float64(time.Second))
	if p.idleTimer == nil {
		p.idleTimer = time.NewTimer(d)
	} else {
		p.idleTimer.Reset(d)
	}
	select {
	case <-p.wake:
		if !p.idleTimer.Stop() {
			// Drain a concurrent expiry so the next Reset starts clean.
			select {
			case <-p.idleTimer.C:
			default:
			}
		}
	case <-p.idleTimer.C:
	}
}

// Thread returns the POA's computing-thread context.
func (p *POA) Thread() rts.Thread { return p.th }

// Router returns the POA's frame router.
func (p *POA) Router() *core.Router { return p.r }

// RegisterSPMD collectively registers an SPMD object: every computing
// thread calls it with the same key and its own servant instance. The
// returned IOR carries every thread's endpoint address.
func (p *POA) RegisterSPMD(key string, iface *core.InterfaceDef, s Servant) (core.IOR, error) {
	if err := iface.Validate(); err != nil {
		return core.IOR{}, err
	}
	if _, dup := p.objects[key]; dup {
		return core.IOR{}, fmt.Errorf("poa: object key %q already registered", key)
	}
	p.objects[key] = &entry{iface: iface, servant: s, spmd: true}
	addrs := rts.AllGather(p.th, []byte(p.r.Addr()))
	ior := core.IOR{
		Interface:  iface.Name,
		Key:        key,
		SPMD:       true,
		ServerSize: p.th.Size(),
		Host:       p.th.HostName(),
	}
	for _, a := range addrs {
		ior.Addrs = append(ior.Addrs, string(a))
	}
	p.peers = ior.Addrs
	// Publish server-side distribution overrides so clients compute
	// identical transfer schedules.
	for oi := range iface.Ops {
		op := &iface.Ops[oi]
		for pi := range op.Params {
			prm := &op.Params[pi]
			if prm.Distributed() && prm.Mode == core.In {
				ior.InDists = append(ior.InDists, core.DistOverride{Op: op.Name, Param: pi, Tmpl: prm.ServerDist})
			}
		}
	}
	return ior, nil
}

// RegisterSingle registers a single object owned by the calling thread
// alone ("single objects are associated with only one computing thread").
// Operations with distributed arguments are rejected, per §3.1. Not
// collective.
func (p *POA) RegisterSingle(key string, iface *core.InterfaceDef, s Servant) (core.IOR, error) {
	if err := iface.Validate(); err != nil {
		return core.IOR{}, err
	}
	for oi := range iface.Ops {
		if iface.Ops[oi].HasDistributed() {
			return core.IOR{}, fmt.Errorf("poa: single object %q cannot serve operation %s with distributed arguments",
				key, iface.Ops[oi].Name)
		}
	}
	if _, dup := p.objects[key]; dup {
		return core.IOR{}, fmt.Errorf("poa: object key %q already registered", key)
	}
	e := &entry{iface: iface, servant: s, spmd: false}
	p.objects[key] = e
	if p.local != nil {
		p.local.Register(key, func(op *core.Operation, args []any) ([]any, error) {
			return p.directCall(e, op, args)
		})
	}
	return core.IOR{
		Interface:  iface.Name,
		Key:        key,
		SPMD:       false,
		ServerSize: 1,
		Addrs:      []string{string(p.r.Addr())},
		Host:       p.th.HostName(),
	}, nil
}

// directCall services a co-located invocation without marshaling.
func (p *POA) directCall(e *entry, op *core.Operation, args []any) ([]any, error) {
	ctx := &Context{Thread: p.th, POA: p, Oneway: op.Oneway}
	in := make([]any, 0, len(args))
	for i := range op.Params {
		if op.Params[i].Mode != core.Out {
			in = append(in, args[i])
		} else {
			in = append(in, nil)
		}
	}
	ret, outs, err := e.servant.Invoke(ctx, op.Name, in)
	if err != nil {
		return nil, err
	}
	vals := make([]any, 0, 1+len(outs))
	if op.Result != nil {
		vals = append(vals, ret)
	}
	vals = append(vals, outs...)
	return vals, nil
}

// Deactivate marks the server for shutdown; ImplIsReady returns after the
// current collective round.
func (p *POA) Deactivate() { p.pendingShutdown = true }

// Fault reports the internal failure that deactivated the adapter, if any:
// non-nil after the dispatch agreement received a frame it could not decode
// or — with AgreementDeadline set — after a sibling computing thread died
// (then it is a *Fault carrying the implicated rank; use errors.As). Nil
// after a clean Deactivate or Shutdown message. Check it when ImplIsReady
// returns unexpectedly.
func (p *POA) Fault() error { return p.fault }

// ImplIsReady passes control to PARDIS: the thread polls for requests until
// the server is deactivated (by Deactivate or a Shutdown message).
// Collective with respect to all computing threads of the server.
func (p *POA) ImplIsReady() {
	for {
		n := p.ProcessRequests()
		if p.shutdown {
			// Drain pooled dispatches so every accepted request is answered
			// before control returns to the server program.
			p.stopDispatchPool()
			return
		}
		if n == 0 {
			p.idleWait()
		}
	}
}

// ProcessRequests polls for and dispatches pending requests, then returns,
// allowing the server to proceed with an interrupted computation.
// Collective with respect to all computing threads of the server. It
// returns the number of requests this thread dispatched.
func (p *POA) ProcessRequests() int {
	count := 0
	p.drain()
	// Single-object requests are served by their owning thread alone —
	// inline, or handed to the dispatch pool so independent requests
	// pipeline while this thread keeps polling the transport.
	for len(p.localQ) > 0 {
		// Shift rather than reslice so the backing array keeps its capacity
		// for reuse across dispatch rounds (the queue is at most a few
		// entries deep).
		lr := p.localQ[0]
		n := len(p.localQ)
		copy(p.localQ, p.localQ[1:])
		p.localQ[n-1] = localReq{}
		p.localQ = p.localQ[:n-1]
		if p.pool != nil {
			p.pool.depth.Add(1)
			poaPoolDepth.Add(1)
			p.pool.reqs <- lr
		} else {
			p.serveSingle(lr.e, lr.req, &p.sendIov, false)
			p.admitted.Add(-1)
		}
		count++
		p.drain()
	}
	// The self-sizing pool is steered here — the owning-thread safe point
	// every dispatch round passes through — so resizing never races the
	// enqueue path above.
	if p.pool != nil && p.pool.auto {
		p.pool.tune(p)
	}
	// Collective phase: thread 0 announces the completed SPMD
	// invocations (and shutdown) in its arrival order.
	count += p.collectivePhase()
	return count
}

// drain moves every pending frame from the transport into the adapter's
// queues without blocking.
func (p *POA) drain() {
	for {
		m, ok, err := p.r.RecvServer(false)
		if err != nil || !ok {
			return
		}
		p.route(m)
	}
}

// drainBlocking waits for one more server-bound message.
func (p *POA) drainBlocking() bool {
	m, ok, err := p.r.RecvServer(true)
	if err != nil || !ok {
		return false
	}
	p.route(m)
	return true
}

func (p *POA) route(m *core.Msg) {
	switch m.Type {
	case pgiop.MsgRequest:
		p.routeRequest(m.Req)
	case pgiop.MsgArgStream:
		a := m.Arg
		k := segKey{a.BindingID, a.SeqNo, a.Param}
		p.segs[k] = append(p.segs[k], a)
	case pgiop.MsgLocateRequest:
		_, found := p.objects[m.Loc.ObjectKey]
		reply := pgiop.EncodeLocateReply(&pgiop.LocateReply{ReqID: m.Loc.ReqID, Found: found})
		_ = p.r.Send(m.From, reply)
	case pgiop.MsgCancelRequest:
		delete(p.gathers, invKey{m.Cancel.BindingID, m.Cancel.SeqNo})
	case pgiop.MsgShutdown:
		p.pendingShutdown = true
	case pgiop.MsgFault:
		p.adoptFault(m.Fault)
	}
}

func (p *POA) routeRequest(req *pgiop.Request) {
	e := p.objects[req.ObjectKey]
	if e == nil {
		if !req.Oneway {
			p.sendException(req.ReplyAddr, req.ReqID, fmt.Sprintf("no object %q on this server", req.ObjectKey))
		}
		return
	}
	if !e.spmd {
		// Admission watermark: refuse before any dispatch state is built,
		// so an overloaded adapter answers in transport time.
		if p.overAdmission() {
			p.shed(req)
			return
		}
		p.admitted.Add(1)
		// Capture the entry now so pool workers never read the object
		// table concurrently with the owning thread.
		p.localQ = append(p.localQ, localReq{e: e, req: req})
		return
	}
	// SPMD headers arrive only at thread 0.
	k := invKey{req.BindingID, req.SeqNo}
	g := p.gathers[k]
	if g == nil {
		g = &gather{reqs: map[int32]*pgiop.Request{}}
		p.gathers[k] = g
	}
	g.reqs[req.ClientRank] = req
	if len(g.reqs) == int(req.ClientSize) {
		p.ready = append(p.ready, k)
	}
}

// sendV2 sends hdr+body as one vectored frame through the reusable scratch
// buffer list, so the variadic argument slice is not allocated per reply.
func (p *POA) sendV2(to nexus.Addr, hdr, body []byte) error {
	p.sendIov[0], p.sendIov[1] = hdr, body
	err := p.r.SendV(to, p.sendIov[:]...)
	p.sendIov[0], p.sendIov[1] = nil, nil
	return err
}

func (p *POA) sendException(addr string, reqID uint32, msg string) {
	poaExceptions.Inc()
	reply := pgiop.EncodeReply(&pgiop.Reply{ReqID: reqID, Status: pgiop.StatusException, Error: msg})
	_ = p.r.Send(nexus.Addr(addr), reply)
}
