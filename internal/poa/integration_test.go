package poa_test

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"pardis/internal/future"

	"pardis/internal/core"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/nexus"
	"pardis/internal/poa"
	"pardis/internal/rts"
	"pardis/internal/typecode"
)

// echoIface is a single-object interface: string/long echo + failure op.
func echoIface() *core.InterfaceDef {
	return &core.InterfaceDef{
		Name: "echo",
		Ops: []core.Operation{
			{
				Name: "shout",
				Params: []core.Param{
					core.NewParam("s", core.In, typecode.TCString),
					core.NewParam("loud", core.Out, typecode.TCString),
				},
				Result: typecode.TCLong,
			},
			{
				Name:   "fail",
				Params: []core.Param{core.NewParam("why", core.In, typecode.TCString)},
			},
			{
				Name:   "fire",
				Params: []core.Param{core.NewParam("s", core.In, typecode.TCString)},
				Oneway: true,
			},
		},
	}
}

type echoServant struct {
	fired []string
}

func (e *echoServant) Invoke(ctx *poa.Context, op string, in []any) (any, []any, error) {
	switch op {
	case "shout":
		s := in[0].(string)
		return int32(len(s)), []any{strings.ToUpper(s)}, nil
	case "fail":
		return nil, nil, errors.New(in[0].(string))
	case "fire":
		e.fired = append(e.fired, in[0].(string))
		return nil, nil, nil
	}
	return nil, nil, fmt.Errorf("bad op %s", op)
}

// scaleIface is the SPMD interface: Y = k * X over distributed sequences.
func scaleIface() *core.InterfaceDef {
	dv := typecode.DSequenceOf(typecode.TCDouble, 0, "BLOCK", "BLOCK")
	return &core.InterfaceDef{
		Name: "scaler",
		Ops: []core.Operation{
			{
				Name: "scale",
				Params: []core.Param{
					core.NewParam("k", core.In, typecode.TCDouble),
					core.NewParam("x", core.In, dv),
					core.NewParam("y", core.Out, dv),
				},
				Result: typecode.TCDouble, // sum of inputs, to check reduction
			},
			{
				Name: "size",
				Params: []core.Param{
					core.NewParam("n", core.Out, typecode.TCLong),
				},
			},
		},
	}
}

// scaleServant scales its local portion and returns the global input sum.
type scaleServant struct{}

func (scaleServant) Invoke(ctx *poa.Context, op string, in []any) (any, []any, error) {
	th := ctx.Thread
	switch op {
	case "size":
		return nil, []any{int32(th.Size())}, nil
	case "scale":
		k := in[0].(float64)
		x := dseq.AsFloat64(in[1].(dseq.Distributed))
		y := dseq.NewFromLayout[float64](th, x.DLayout(), dseq.Float64Codec{})
		localSum := 0.0
		for i, v := range x.Local() {
			y.Local()[i] = k * v
			localSum += v
		}
		// Global reduction through the run-time system.
		parts := rts.Gather(th, 0, f64bytes(localSum))
		total := 0.0
		if th.Rank() == 0 {
			for _, p := range parts {
				total += bytesF64(p)
			}
		}
		total = bytesF64(rts.Bcast(th, 0, f64bytes(total)))
		return total, []any{y}, nil
	}
	return nil, nil, fmt.Errorf("bad op %s", op)
}

func f64bytes(v float64) []byte {
	var b [8]byte
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	return b[:]
}

func bytesF64(b []byte) float64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(u)
}

// startSingleServer runs a one-thread server with an echo object and
// returns its IOR and a stop-wait function.
func startSingleServer(t *testing.T, fab *nexus.Inproc, table *core.LocalTable) (core.IOR, *echoServant, func()) {
	t.Helper()
	g := rts.NewChanGroup("server-host", 1)
	iorCh := make(chan core.IOR, 1)
	srv := &echoServant{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := g.Thread(0)
		r := core.NewRouter(fab.NewEndpoint("server"))
		p := poa.New(th, r, table)
		p.PollInterval = 50e-6
		ior, err := p.RegisterSingle("echo-1", echoIface(), srv)
		if err != nil {
			t.Error(err)
			return
		}
		iorCh <- ior
		p.ImplIsReady()
	}()
	ior := <-iorCh
	return ior, srv, wg.Wait
}

func newClient(fab *nexus.Inproc, table *core.LocalTable) *core.ORB {
	return core.NewORB(core.NewRouter(fab.NewEndpoint("client")), nil, table)
}

func TestSingleObjectBlockingInvocation(t *testing.T) {
	fab := nexus.NewInproc()
	ior, _, wait := startSingleServer(t, fab, nil)
	orb := newClient(fab, nil)
	b, err := orb.Bind(ior, echoIface())
	if err != nil {
		t.Fatal(err)
	}
	vals, err := b.Invoke("shout", []any{"pardis", nil})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != int32(6) || vals[1] != "PARDIS" {
		t.Fatalf("vals = %v", vals)
	}
	if err := b.Shutdown("test done"); err != nil {
		t.Fatal(err)
	}
	wait()
}

func TestSingleObjectNonBlockingAndOrdering(t *testing.T) {
	fab := nexus.NewInproc()
	ior, _, wait := startSingleServer(t, fab, nil)
	orb := newClient(fab, nil)
	b, _ := orb.Bind(ior, echoIface())
	var cells []*future.Cell
	for i := 0; i < 10; i++ {
		cell, err := b.InvokeNB("shout", []any{fmt.Sprintf("msg-%d", i), nil})
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, cell)
	}
	// Futures of all ten requests resolve, in order, with the right values.
	for i, c := range cells {
		vals, err := core.CellResults(c)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if vals[1] != fmt.Sprintf("MSG-%d", i) {
			t.Fatalf("request %d resolved to %v", i, vals[1])
		}
	}
	b.Shutdown("done")
	wait()
}

func TestServerException(t *testing.T) {
	fab := nexus.NewInproc()
	ior, _, wait := startSingleServer(t, fab, nil)
	orb := newClient(fab, nil)
	b, _ := orb.Bind(ior, echoIface())
	_, err := b.Invoke("fail", []any{"deliberate"})
	if err == nil || !strings.Contains(err.Error(), "deliberate") {
		t.Fatalf("err = %v", err)
	}
	// Server survives exceptions.
	vals, err := b.Invoke("shout", []any{"ok", nil})
	if err != nil || vals[1] != "OK" {
		t.Fatalf("post-exception call: %v %v", vals, err)
	}
	b.Shutdown("done")
	wait()
}

func TestLocate(t *testing.T) {
	fab := nexus.NewInproc()
	ior, _, wait := startSingleServer(t, fab, nil)
	orb := newClient(fab, nil)
	b, _ := orb.Bind(ior, echoIface())
	found, err := b.Locate()
	if err != nil || !found {
		t.Fatalf("locate = %v, %v", found, err)
	}
	bogus := ior
	bogus.Key = "missing"
	b2, _ := orb.Bind(bogus, echoIface())
	found, err = b2.Locate()
	if err != nil || found {
		t.Fatalf("bogus locate = %v, %v", found, err)
	}
	b.Shutdown("done")
	wait()
}

func TestOnewayFire(t *testing.T) {
	fab := nexus.NewInproc()
	ior, srv, wait := startSingleServer(t, fab, nil)
	orb := newClient(fab, nil)
	b, _ := orb.Bind(ior, echoIface())
	cell, err := b.InvokeNB("fire", []any{"async"})
	if err != nil {
		t.Fatal(err)
	}
	if !cell.Resolved() {
		t.Fatal("oneway cell must resolve at send")
	}
	// Force a round trip so the oneway is processed before shutdown.
	if _, err := b.Invoke("shout", []any{"sync", nil}); err != nil {
		t.Fatal(err)
	}
	b.Shutdown("done")
	wait()
	if len(srv.fired) != 1 || srv.fired[0] != "async" {
		t.Fatalf("fired = %v", srv.fired)
	}
}

func TestLocalBypass(t *testing.T) {
	fab := nexus.NewInproc()
	table := core.NewLocalTable()
	ior, _, wait := startSingleServer(t, fab, table)
	orb := newClient(fab, table)
	b, _ := orb.Bind(ior, echoIface())
	// The direct call runs on the client goroutine — no server poll needed.
	vals, err := b.Invoke("shout", []any{"local", nil})
	if err != nil || vals[0] != int32(5) || vals[1] != "LOCAL" {
		t.Fatalf("bypass vals = %v, %v", vals, err)
	}
	b.Shutdown("done")
	wait()
}

// runSPMDPair launches an S-thread server with the scale object and a
// C-thread client running clientBody, on the chan backend.
func runSPMDPair(t *testing.T, S, C int, clientBody func(th rts.Thread, b *core.Binding)) {
	t.Helper()
	fab := nexus.NewInproc()
	serverG := rts.NewChanGroup("serverhost", S)
	clientG := rts.NewChanGroup("clienthost", C)
	iorCh := make(chan core.IOR, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		serverG.Run(func(th rts.Thread) {
			r := core.NewRouter(fab.NewEndpoint(fmt.Sprintf("srv%d", th.Rank())))
			p := poa.New(th, r, nil)
			p.PollInterval = 20e-6
			ior, err := p.RegisterSPMD("scaler-1", scaleIface(), scaleServant{})
			if err != nil {
				t.Error(err)
				return
			}
			if th.Rank() == 0 {
				iorCh <- ior
			}
			p.ImplIsReady()
		})
	}()
	ior := <-iorCh
	clientG.Run(func(th rts.Thread) {
		r := core.NewRouter(fab.NewEndpoint(fmt.Sprintf("cli%d", th.Rank())))
		orb := core.NewORB(r, th, nil)
		b, err := orb.SPMDBind(ior, scaleIface())
		if err != nil {
			t.Error(err)
			return
		}
		clientBody(th, b)
		th.Barrier()
		if th.Rank() == 0 {
			b.Shutdown("test done")
		}
	})
	wg.Wait()
}

func TestSPMDDistributedRoundTrip(t *testing.T) {
	const N = 103
	for _, cfg := range []struct{ S, C int }{{4, 2}, {2, 4}, {3, 3}, {1, 2}, {4, 1}} {
		t.Run(fmt.Sprintf("S%dC%d", cfg.S, cfg.C), func(t *testing.T) {
			runSPMDPair(t, cfg.S, cfg.C, func(th rts.Thread, b *core.Binding) {
				x := dseq.New[float64](th, N, dist.BlockTemplate(), dseq.Float64Codec{})
				for loc := range x.Local() {
					x.Local()[loc] = float64(x.Layout().GlobalIndex(th.Rank(), loc))
				}
				y := dseq.New[float64](th, 0, dist.BlockTemplate(), dseq.Float64Codec{})
				vals, err := b.Invoke("scale", []any{3.0, x, y})
				if err != nil {
					panic(err)
				}
				wantSum := float64(N*(N-1)) / 2
				if vals[0] != wantSum {
					panic(fmt.Sprintf("sum = %v, want %v", vals[0], wantSum))
				}
				got := vals[1].(dseq.Distributed)
				yd := dseq.AsFloat64(got)
				if yd.GlobalLen() != N {
					panic(fmt.Sprintf("out len %d", yd.GlobalLen()))
				}
				for loc, v := range yd.Local() {
					g := yd.DLayout().GlobalIndex(th.Rank(), loc)
					if v != 3*float64(g) {
						panic(fmt.Sprintf("y[%d] = %v, want %v", g, v, 3*float64(g)))
					}
				}
			})
		})
	}
}

func TestSPMDOutDistributionRequest(t *testing.T) {
	const N = 64
	runSPMDPair(t, 3, 2, func(th rts.Thread, b *core.Binding) {
		// Ask for the result concentrated on client thread 0 — the
		// paper's "concentrated on one processor" case.
		if err := b.SetOutDist("scale", 2, dist.CollapsedOn(0)); err != nil {
			panic(err)
		}
		x := dseq.New[float64](th, N, dist.BlockTemplate(), dseq.Float64Codec{})
		for loc := range x.Local() {
			x.Local()[loc] = 1
		}
		y := dseq.New[float64](th, 0, dist.BlockTemplate(), dseq.Float64Codec{})
		vals, err := b.Invoke("scale", []any{2.0, x, y})
		if err != nil {
			panic(err)
		}
		yd := dseq.AsFloat64(vals[1].(dseq.Distributed))
		if th.Rank() == 0 {
			if len(yd.Local()) != N {
				panic(fmt.Sprintf("rank 0 has %d of %d elements", len(yd.Local()), N))
			}
			for _, v := range yd.Local() {
				if v != 2 {
					panic("bad element value")
				}
			}
		} else if len(yd.Local()) != 0 {
			panic("non-root received elements of a collapsed out argument")
		}
	})
}

func TestSingleClientOnSPMDObject(t *testing.T) {
	// A non-collective client invoking an operation without distributed
	// arguments on a 3-thread SPMD object.
	fab := nexus.NewInproc()
	serverG := rts.NewChanGroup("srv", 3)
	iorCh := make(chan core.IOR, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		serverG.Run(func(th rts.Thread) {
			r := core.NewRouter(fab.NewEndpoint("s"))
			p := poa.New(th, r, nil)
			p.PollInterval = 20e-6
			ior, _ := p.RegisterSPMD("scaler-2", scaleIface(), scaleServant{})
			if th.Rank() == 0 {
				iorCh <- ior
			}
			p.ImplIsReady()
		})
	}()
	ior := <-iorCh
	orb := newClient(fab, nil)
	b, err := orb.SPMDBind(ior, scaleIface()) // collective bind of a 1-thread client
	if err != nil {
		t.Fatal(err)
	}
	vals, err := b.Invoke("size", []any{nil})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != int32(3) {
		t.Fatalf("size = %v", vals[0])
	}
	b.Shutdown("done")
	wg.Wait()
}
