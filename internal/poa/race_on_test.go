//go:build race

package poa

const raceEnabled = true
