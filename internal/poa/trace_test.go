package poa_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pardis/internal/core"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/nexus"
	"pardis/internal/obs"
	"pardis/internal/rts"
)

// withTracing arms the process-wide tracer for one test, restoring the
// disabled state (and clearing the ring) when it finishes. Tests in this
// package run sequentially, so the shared tracer sees one scenario at a time.
func withTracing(t *testing.T) {
	t.Helper()
	obs.DefaultTracer.Reset()
	obs.DefaultTracer.SetEnabled(true)
	t.Cleanup(func() {
		obs.DefaultTracer.SetEnabled(false)
		obs.DefaultTracer.Reset()
	})
}

func spansNamed(spans []obs.Span, name string) []obs.Span {
	var out []obs.Span
	for _, sp := range spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

// swallowNEP silently discards the first `skip` frames sent through it —
// the deterministic "first request lost on the wire" a retry must survive.
type swallowNEP struct {
	nexus.Endpoint
	mu   sync.Mutex
	skip int
}

func (e *swallowNEP) Send(to nexus.Addr, data []byte) error { return e.SendV(to, data) }

func (e *swallowNEP) SendV(to nexus.Addr, bufs ...[]byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.skip > 0 {
		e.skip--
		return nil
	}
	return e.Endpoint.SendV(to, bufs...)
}

// TestTraceRetryReusesTraceIDFreshSpanID pins the retry contract: a
// re-issued attempt stays inside the original invocation's trace (same
// TraceID, same stub root span) but gets a fresh per-attempt span ID, so a
// straggler frame of the superseded attempt can never masquerade as the new
// one.
func TestTraceRetryReusesTraceIDFreshSpanID(t *testing.T) {
	fab := nexus.NewInproc()
	newEP := func(name string) (nexus.Endpoint, error) { return fab.NewEndpoint(name), nil }
	fi := nexus.NewFaultInjector(1, nexus.FaultPlan{}) // clean plan; only the client wrapper drops
	ior, _, retire := startFaultedSingleServer(t, newEP, fi)

	cep := fab.NewEndpoint("trace-retry-client")
	orb := core.NewORB(core.NewRouter(&swallowNEP{Endpoint: cep, skip: 1}), nil, nil)
	b, err := orb.Bind(ior, probeIface())
	if err != nil {
		t.Fatal(err)
	}
	b.SetDeadline(0.05)
	b.SetRetryPolicy(core.RetryPolicy{MaxAttempts: 4, BaseBackoff: 0.002, MaxBackoff: 0.01, JitterSeed: 7})

	withTracing(t)
	vals, err := b.Invoke("probe", []any{int32(7)})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 3.5 {
		t.Fatalf("probe = %v", vals[0])
	}
	retire() // POA drained: all server-side spans are recorded

	spans := obs.DefaultTracer.Spans()
	roots := spansNamed(spans, "stub.invoke")
	if len(roots) != 1 {
		t.Fatalf("stub.invoke spans = %d, want 1 (one invocation, however many attempts)", len(roots))
	}
	root := roots[0]
	sends := spansNamed(spans, "orb.send")
	resends := spansNamed(spans, "orb.resend")
	if len(sends) != 1 || len(resends) == 0 {
		t.Fatalf("orb.send = %d, orb.resend = %d; want 1 and >= 1", len(sends), len(resends))
	}
	attemptIDs := map[uint64]bool{sends[0].ID: true}
	for _, sp := range append(sends, resends...) {
		if sp.Trace != root.Trace {
			t.Fatalf("%s carries trace %x, want the invocation's %x", sp.Name, sp.Trace, root.Trace)
		}
		if sp.Parent != root.ID {
			t.Fatalf("%s parent = %x, want stub root %x", sp.Name, sp.Parent, root.ID)
		}
	}
	for _, sp := range resends {
		if attemptIDs[sp.ID] {
			t.Fatalf("resend reused span ID %x of an earlier attempt", sp.ID)
		}
		attemptIDs[sp.ID] = true
	}
	// The server only ever saw a resend (the first frame was swallowed), so
	// its decode span must be parented to a resend attempt, not the original.
	decodes := spansNamed(spans, "pgiop.decode")
	if len(decodes) == 0 {
		t.Fatal("server recorded no pgiop.decode span")
	}
	for _, d := range decodes {
		if d.Trace != root.Trace {
			t.Fatalf("server decode trace %x, want %x", d.Trace, root.Trace)
		}
		if d.Parent == sends[0].ID {
			t.Fatal("server decode parented to the swallowed first attempt")
		}
		if !attemptIDs[d.Parent] {
			t.Fatalf("server decode parent %x is not any attempt span", d.Parent)
		}
	}
}

// TestTraceTimeoutRecordsRootOnce: an invocation that dies on its deadline
// still closes its stub root span — exactly once, at sweep time.
func TestTraceTimeoutRecordsRootOnce(t *testing.T) {
	fab := nexus.NewInproc()
	sink := fab.NewEndpoint("trace-timeout-sink") // exists; nobody serves
	orb := core.NewORB(core.NewRouter(fab.NewEndpoint("trace-timeout-cli")), nil, nil)
	ior := core.IOR{Interface: "prober", Key: "probe-1", ServerSize: 1, Addrs: []string{string(sink.Addr())}}
	b, err := orb.Bind(ior, probeIface())
	if err != nil {
		t.Fatal(err)
	}
	b.SetDeadline(0.03)

	withTracing(t)
	if _, err := b.Invoke("probe", []any{int32(1)}); !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("err = %v, want deadline", err)
	}
	spans := obs.DefaultTracer.Spans()
	roots := spansNamed(spans, "stub.invoke")
	if len(roots) != 1 {
		t.Fatalf("stub.invoke spans = %d, want exactly 1", len(roots))
	}
	sends := spansNamed(spans, "orb.send")
	if len(sends) != 1 || sends[0].Trace != roots[0].Trace || sends[0].Parent != roots[0].ID {
		t.Fatalf("orb.send spans %+v do not nest under the root", sends)
	}
	if encs := spansNamed(spans, "pgiop.encode"); len(encs) != 1 || encs[0].Parent != sends[0].ID {
		t.Fatalf("pgiop.encode spans %+v do not nest under the send", encs)
	}
	if got := spansNamed(spans, "orb.resend"); len(got) != 0 {
		t.Fatalf("non-retryable invocation recorded %d resend spans", len(got))
	}
}

// TestTraceCancelRecordsRoot: withdrawing an invocation resolves it with
// ErrCancelled and closes its root span.
func TestTraceCancelRecordsRoot(t *testing.T) {
	fab := nexus.NewInproc()
	sink := fab.NewEndpoint("trace-cancel-sink")
	orb := core.NewORB(core.NewRouter(fab.NewEndpoint("trace-cancel-cli")), nil, nil)
	ior := core.IOR{Interface: "prober", Key: "probe-1", ServerSize: 1, Addrs: []string{string(sink.Addr())}}
	b, err := orb.Bind(ior, probeIface())
	if err != nil {
		t.Fatal(err)
	}

	withTracing(t)
	cell, err := b.InvokeNB("probe", []any{int32(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !orb.Cancel(cell) {
		t.Fatal("Cancel did not find the pending invocation")
	}
	if err := cell.Wait(); !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if roots := spansNamed(obs.DefaultTracer.Spans(), "stub.invoke"); len(roots) != 1 {
		t.Fatalf("stub.invoke spans = %d, want 1", len(roots))
	}
}

// TestTraceLateReplyEmitsNoClientSpan: a reply that arrives after the
// deadline already resolved the invocation must be discarded without
// recording anything — the root span was closed at timeout, and a second
// stub span for the same invocation would corrupt the timeline.
func TestTraceLateReplyEmitsNoClientSpan(t *testing.T) {
	fab := nexus.NewInproc()
	ior, stop := startSlowServer(t, fab, 100*time.Millisecond)
	orb := core.NewORB(core.NewRouter(fab.NewEndpoint("trace-late-cli")), nil, nil)
	b, err := orb.Bind(ior, probeIface())
	if err != nil {
		t.Fatal(err)
	}
	b.SetDeadline(0.02)

	withTracing(t)
	if _, err := b.Invoke("probe", []any{int32(1)}); !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("err = %v, want deadline (servant sleeps 5x longer)", err)
	}
	roots := spansNamed(obs.DefaultTracer.Spans(), "stub.invoke")
	if len(roots) != 1 {
		t.Fatalf("stub.invoke spans after timeout = %d, want 1", len(roots))
	}
	staleTrace := roots[0].Trace

	// The second invocation's pump processes the straggler reply to the
	// first (its request ID is gone from the pending table) before its own.
	b.SetDeadline(5)
	vals, err := b.Invoke("probe", []any{int32(4)})
	if err != nil || vals[0] != 2.0 {
		t.Fatalf("second invoke: %v, %v", vals, err)
	}
	spans := obs.DefaultTracer.Spans()
	if got := len(spansNamed(spans, "stub.invoke")); got != 2 {
		t.Fatalf("stub.invoke spans = %d, want 2 (timeout + success, none for the straggler)", got)
	}
	stale := 0
	for _, sp := range spans {
		if sp.Trace == staleTrace && sp.Layer == obs.LayerStub {
			stale++
		}
	}
	if stale != 1 {
		t.Fatalf("timed-out invocation has %d stub spans, want exactly the one closed at timeout", stale)
	}

	stop()
}

// TestTraceSPMDNesting is the acceptance trace: a 4-rank SPMD invocation
// whose spans — across every server rank — share the stub's TraceID and
// nest stub → ORB → pgiop → POA → rts.
func TestTraceSPMDNesting(t *testing.T) {
	const S = 4
	withTracing(t)
	runSPMDPair(t, S, 1, func(th rts.Thread, b *core.Binding) {
		x := dseq.New[float64](th, 64, dist.BlockTemplate(), dseq.Float64Codec{})
		for loc := range x.Local() {
			x.Local()[loc] = 1
		}
		y := dseq.New[float64](th, 0, dist.BlockTemplate(), dseq.Float64Codec{})
		if _, err := b.Invoke("scale", []any{2.0, x, y}); err != nil {
			panic(err)
		}
	})

	spans := obs.DefaultTracer.Spans()
	roots := spansNamed(spans, "stub.invoke")
	if len(roots) != 1 {
		t.Fatalf("stub.invoke spans = %d, want 1", len(roots))
	}
	root := roots[0]
	byID := map[uint64]obs.Span{}
	for _, sp := range spans {
		if sp.Trace == root.Trace {
			byID[sp.ID] = sp
		}
	}

	// Every server rank decoded the request under the client's send span.
	sends := spansNamed(spans, "orb.send")
	if len(sends) != 1 || sends[0].Parent != root.ID {
		t.Fatalf("orb.send spans %+v do not nest under the stub root", sends)
	}
	decodes := spansNamed(spans, "pgiop.decode")
	ranks := map[int32]bool{}
	for _, d := range decodes {
		if d.Trace != root.Trace {
			t.Fatalf("rank %d decode trace %x, want %x", d.Rank, d.Trace, root.Trace)
		}
		if d.Parent != sends[0].ID {
			t.Fatalf("rank %d decode parent %x, want the wire span %x", d.Rank, d.Parent, sends[0].ID)
		}
		ranks[d.Rank] = true
	}
	if len(ranks) != S {
		t.Fatalf("decode spans from %d distinct ranks, want all %d", len(ranks), S)
	}

	// The full five-layer chain: every rts span walks up through poa and
	// pgiop to the client's orb send and stub root.
	wantChain := []string{obs.LayerRTS, obs.LayerPOA, obs.LayerPGIOP, obs.LayerORB, obs.LayerStub}
	rtsSpans := 0
	for _, sp := range spans {
		if sp.Trace != root.Trace || sp.Layer != obs.LayerRTS {
			continue
		}
		rtsSpans++
		cur, chain := sp, []string{}
		for {
			chain = append(chain, cur.Layer)
			if cur.Parent == 0 {
				break
			}
			parent, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("span %s (rank %d) has dangling parent %x", cur.Name, cur.Rank, cur.Parent)
			}
			cur = parent
		}
		if len(chain) != len(wantChain) {
			t.Fatalf("rts span %s chain %v, want layers %v", sp.Name, chain, wantChain)
		}
		for i := range chain {
			if chain[i] != wantChain[i] {
				t.Fatalf("rts span %s chain %v, want layers %v", sp.Name, chain, wantChain)
			}
		}
	}
	if rtsSpans < S {
		t.Fatalf("rts spans in trace = %d, want at least one per rank (%d)", rtsSpans, S)
	}

	// poa.dispatch and poa.collect (the argument collection of the
	// distributed in) appear under every rank's decode.
	for _, name := range []string{"poa.dispatch", "poa.collect"} {
		got := spansNamed(spans, name)
		perRank := map[int32]bool{}
		for _, sp := range got {
			if sp.Trace == root.Trace {
				perRank[sp.Rank] = true
			}
		}
		if len(perRank) != S {
			t.Fatalf("%s spans from %d ranks, want %d", name, len(perRank), S)
		}
	}
}
