package poa

import (
	"fmt"
	"testing"

	"pardis/internal/core"
	"pardis/internal/pgiop"
	"pardis/internal/rts"
)

// agreementIface is the smallest dispatchable SPMD surface: one oneway op
// with no arguments, so the benchmark isolates the agreement protocol
// itself (header broadcast + identical dequeue on every thread) from
// marshaling and reply traffic.
func agreementIface() *core.InterfaceDef {
	return &core.InterfaceDef{
		Name: "agree",
		Ops:  []core.Operation{{Name: "nop", Oneway: true}},
	}
}

func agreementRequest(seq uint32) *pgiop.Request {
	return &pgiop.Request{
		BindingID: "agree-binding", SeqNo: seq, ReqID: seq,
		ClientRank: 0, ClientSize: 1,
		ObjectKey: "agree-1", Operation: "nop", Oneway: true,
	}
}

// seedReady injects k completed invocation gathers into thread 0's POA, as
// routeRequest would after the last client header arrived.
func seedReady(p *POA, k int) {
	for i := 0; i < k; i++ {
		key := invKey{"agree-binding", uint32(i)}
		p.gathers[key] = &gather{reqs: map[int32]*pgiop.Request{0: agreementRequest(uint32(i))}}
		p.ready = append(p.ready, key)
	}
}

// BenchmarkDispatchAgreement times one collective phase dispatching k
// completed SPMD invocations across p threads. No transport is involved:
// the requests are seeded directly, so ns/op and allocs/op measure the
// agreement broadcast and decision decode alone.
func BenchmarkDispatchAgreement(b *testing.B) {
	for _, p := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			benchAgreement(b, p, 3)
		})
	}
}

func benchAgreement(b *testing.B, threads, k int) {
	b.Helper()
	g := rts.NewChanGroup("agree", threads)
	iface := agreementIface()
	nop := ServantFunc(func(ctx *Context, op string, in []any) (any, []any, error) {
		return nil, nil, nil
	})
	b.ReportAllocs()
	b.ResetTimer()
	g.Run(func(th rts.Thread) {
		p := New(th, nil, nil)
		p.objects["agree-1"] = &entry{iface: iface, servant: nop, spmd: true}
		for i := 0; i < b.N; i++ {
			if th.Rank() == 0 {
				seedReady(p, k)
			}
			if n := p.collectivePhase(); n != k {
				panic(fmt.Sprintf("dispatched %d of %d decisions", n, k))
			}
		}
	})
}
