package simnet

import (
	"testing"

	"pardis/internal/vtime"
)

func TestComputeScalesWithSpeed(t *testing.T) {
	s := vtime.NewSim()
	slow := NewHost("slow", 1.0, 1, 0, 0)
	fast := NewHost("fast", 2.0, 1, 0, 0)
	var tSlow, tFast vtime.Time
	s.Spawn("slow", func(p *vtime.Proc) {
		slow.Compute(p, 10)
		tSlow = p.Now()
	})
	s.Spawn("fast", func(p *vtime.Proc) {
		fast.Compute(p, 10)
		tFast = p.Now()
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if tSlow != vtime.Seconds(10) || tFast != vtime.Seconds(5) {
		t.Fatalf("slow=%v fast=%v, want 10s and 5s", tSlow, tFast)
	}
}

func TestLinkOccupiesSender(t *testing.T) {
	s := vtime.NewSim()
	l := NewLink("l", vtime.Seconds(1), 100) // 100 B/s, 1 s latency
	var senderDone, arrival vtime.Time
	s.Spawn("tx", func(p *vtime.Proc) {
		arrival = l.Send(p, 200) // 2 s occupancy
		senderDone = p.Now()
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if senderDone != vtime.Seconds(2) {
		t.Fatalf("sender occupied until %v, want 2s", senderDone)
	}
	if arrival != vtime.Seconds(3) {
		t.Fatalf("arrival %v, want 3s (occupancy+latency)", arrival)
	}
}

func TestLinkContention(t *testing.T) {
	s := vtime.NewSim()
	l := NewLink("l", 0, 100)
	var ends []vtime.Time
	for i := 0; i < 2; i++ {
		s.Spawn("tx", func(p *vtime.Proc) {
			l.Send(p, 100) // 1 s each, serialized
			ends = append(ends, p.Now())
		})
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ends[0] != vtime.Seconds(1) || ends[1] != vtime.Seconds(2) {
		t.Fatalf("ends = %v, want [1s 2s]", ends)
	}
	if l.Busy() != vtime.Seconds(2) {
		t.Fatalf("busy = %v, want 2s", l.Busy())
	}
}

func TestInternalSendParallelNICs(t *testing.T) {
	s := vtime.NewSim()
	h := NewHost("h", 1, 4, 0, 100)
	var ends []vtime.Time
	for i := 0; i < 2; i++ {
		src := i
		s.Spawn("tx", func(p *vtime.Proc) {
			h.InternalSend(p, src, 100) // distinct NICs: both finish at 1s
			ends = append(ends, p.Now())
		})
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ends[0] != vtime.Seconds(1) || ends[1] != vtime.Seconds(1) {
		t.Fatalf("ends = %v, want both 1s (parallel NICs)", ends)
	}
}

func TestPaperTestbedShape(t *testing.T) {
	tb := PaperTestbed()
	for _, name := range []string{"onyx", "powerchallenge", "sp2", "indy"} {
		if tb.Host(name) == nil {
			t.Fatalf("missing host %s", name)
		}
	}
	if tb.Host("powerchallenge").Speed <= tb.Host("onyx").Speed {
		t.Fatal("Power Challenge must be faster than Onyx (drives Figure 2)")
	}
	if tb.Host("powerchallenge").Nodes != 10 || tb.Host("onyx").Nodes != 4 || tb.Host("sp2").Nodes != 8 {
		t.Fatal("node counts must match the paper's configuration")
	}
	atm, eth := tb.Link("atm"), tb.Link("ethernet")
	if atm.TransferTime(1<<20) >= eth.TransferTime(1<<20) {
		t.Fatal("ATM must be faster than Ethernet for large transfers")
	}
}

func TestTransferTimeMonotoneProperty(t *testing.T) {
	l := NewLink("l", vtime.Milliseconds(1), 1e6)
	prev := vtime.Time(-1)
	for size := 0; size <= 1<<20; size += 4096 {
		tt := l.TransferTime(size)
		if tt < prev {
			t.Fatalf("TransferTime not monotone at size %d", size)
		}
		prev = tt
	}
}
