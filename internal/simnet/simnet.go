// Package simnet models the machines and networks of the PARDIS paper's
// testbed on top of the vtime discrete-event scheduler.
//
// The paper's experiments ran on a 4-node SGI Onyx (R4400), a 10-node SGI
// Power Challenge (R8000) and an 8-node IBM SP/2, joined by a dedicated
// 155 Mb/s ATM link (Figures 2 and 4) or Ethernet (Figure 5). Those machines
// are long gone; what the figures actually depend on is the *ratio* between
// per-host compute speeds and the latency/bandwidth of the links. This
// package captures exactly those parameters so the experiment harness can
// regenerate the figures' shapes deterministically.
package simnet

import "pardis/internal/vtime"

// Host is a parallel machine: a pool of identical nodes with a relative
// compute speed, plus an internal interconnect used by the host's own
// message-passing runtime (the paper's MPI/Tulip/POOMA layer).
type Host struct {
	Name  string
	Speed float64 // node speed relative to the reference machine (1.0)
	Nodes int

	// Internal interconnect parameters (per message).
	InternalLatency   vtime.Time
	InternalByteTime  vtime.Time // transfer time per byte
	internalResources []*vtime.Resource
}

// NewHost creates a host with n nodes of the given relative speed and a
// shared-memory-class internal interconnect (per-node NICs so intra-host
// transfers on distinct nodes can proceed in parallel).
func NewHost(name string, speed float64, n int, latency vtime.Time, bytesPerSec float64) *Host {
	h := &Host{
		Name:             name,
		Speed:            speed,
		Nodes:            n,
		InternalLatency:  latency,
		InternalByteTime: perByte(bytesPerSec),
	}
	for i := 0; i < n; i++ {
		h.internalResources = append(h.internalResources, vtime.NewResource(name+"-nic"))
	}
	return h
}

func perByte(bytesPerSec float64) vtime.Time {
	if bytesPerSec <= 0 {
		return 0
	}
	return vtime.Seconds(1 / bytesPerSec)
}

// Compute occupies the calling process for refSeconds of reference-machine
// work, scaled by the host's node speed.
func (h *Host) Compute(p *vtime.Proc, refSeconds float64) {
	p.Advance(vtime.Seconds(refSeconds / h.Speed))
}

// ComputeTime reports how long refSeconds of reference work takes on this
// host without advancing any clock.
func (h *Host) ComputeTime(refSeconds float64) vtime.Time {
	return vtime.Seconds(refSeconds / h.Speed)
}

// InternalSend models an intra-host message of the given size sent by node
// src: the sender is occupied for the wire occupancy on its NIC, and the
// function returns the virtual time at which the message arrives at the
// destination node.
func (h *Host) InternalSend(p *vtime.Proc, src, size int) (arrival vtime.Time) {
	occ := vtime.Time(size) * h.InternalByteTime
	nic := h.internalResources[src%len(h.internalResources)]
	start := nic.Acquire(p, occ)
	p.AdvanceTo(start + occ)
	return start + occ + h.InternalLatency
}

// Link is an inter-host network: a serially-reusable pipe with latency and
// bandwidth. It models the paper's single-threaded NexusLite transport: the
// sending process is occupied for the full wire occupancy of its message.
type Link struct {
	Name     string
	Latency  vtime.Time
	ByteTime vtime.Time
	res      *vtime.Resource
}

// NewLink creates a link with the given one-way latency and bandwidth in
// bytes per second.
func NewLink(name string, latency vtime.Time, bytesPerSec float64) *Link {
	return &Link{
		Name:     name,
		Latency:  latency,
		ByteTime: perByte(bytesPerSec),
		res:      vtime.NewResource(name),
	}
}

// Send models transmitting size bytes: the sender process is occupied until
// its bytes have been put on the (shared, serialized) wire; the returned
// arrival stamp additionally includes the propagation latency.
func (l *Link) Send(p *vtime.Proc, size int) (arrival vtime.Time) {
	occ := vtime.Time(size) * l.ByteTime
	start := l.res.Acquire(p, occ)
	p.AdvanceTo(start + occ)
	return start + occ + l.Latency
}

// TransferTime reports latency + occupancy for a message of the given size,
// ignoring contention.
func (l *Link) TransferTime(size int) vtime.Time {
	return l.Latency + vtime.Time(size)*l.ByteTime
}

// Busy reports the cumulative wire occupancy consumed on the link.
func (l *Link) Busy() vtime.Time { return l.res.Busy() }

// Loopback is a link-like model for co-located endpoints: a memcpy-class
// path with negligible latency, used when client and server share a host.
func Loopback(name string) *Link {
	return NewLink(name, vtime.Microseconds(5), 200e6)
}

// Testbed is a named collection of hosts and links.
type Testbed struct {
	Hosts map[string]*Host
	Links map[string]*Link
}

// Bandwidth helpers.
const (
	Mbit = 1e6 / 8 // bytes per second in one megabit/s
)

// PaperTestbed builds the machines and networks of the SC'97 evaluation.
//
// Relative node speeds are calibrated from the era's LINPACK-class ratios:
// the 200 MHz R4400 Onyx node is the 1.0 reference; the 75 MHz R8000 Power
// Challenge node is ~2.5x on dense FP; an SP/2 P2SC-class node ~2.0x.
// The ATM link is the paper's dedicated 155 Mb/s (~2 ms end-to-end latency
// for the protocol stack of the day); Ethernet is shared 10 Mb/s.
func PaperTestbed() *Testbed {
	tb := &Testbed{Hosts: map[string]*Host{}, Links: map[string]*Link{}}
	add := func(h *Host) { tb.Hosts[h.Name] = h }
	add(NewHost("onyx", 1.0, 4, vtime.Microseconds(30), 80e6))             // HOST 1: 4-node SGI Onyx R4400
	add(NewHost("powerchallenge", 2.5, 10, vtime.Microseconds(25), 100e6)) // HOST 2: 10-node SGI PC R8000
	add(NewHost("sp2", 2.0, 8, vtime.Microseconds(40), 35e6))              // 8 nodes of IBM SP/2
	add(NewHost("indy", 0.8, 1, vtime.Microseconds(30), 80e6))             // SGI Indy workstation (visualizer)
	tb.Links["atm"] = NewLink("atm", vtime.Milliseconds(2), 155*Mbit)
	tb.Links["ethernet"] = NewLink("ethernet", vtime.Milliseconds(1.2), 10*Mbit)
	return tb
}

// Host returns the named host, panicking if absent (configuration error).
func (tb *Testbed) Host(name string) *Host {
	h, ok := tb.Hosts[name]
	if !ok {
		panic("simnet: unknown host " + name)
	}
	return h
}

// Link returns the named link, panicking if absent (configuration error).
func (tb *Testbed) Link(name string) *Link {
	l, ok := tb.Links[name]
	if !ok {
		panic("simnet: unknown link " + name)
	}
	return l
}
