// Replicated-service gate: the serve figure re-runs in-process (quick grid,
// virtual clock — deterministic, so these margins are regression gates, not
// noise). Killing one of four replicas mid-run must not cost idempotent
// clients their invocations: the group bindings fail the work over and at
// least 99% completes. And under overload, admission control must buy tail
// latency — the shed cell's p99 has to beat the no-admission cell's p99,
// or shedding is pure loss.
package pardis_test

import (
	"testing"

	"pardis/internal/bench"
)

func TestServeGate(t *testing.T) {
	pts := bench.FigureServe(true)
	byScenario := make(map[string]bench.ServePoint, len(pts))
	for _, pt := range pts {
		byScenario[pt.Scenario] = pt
		t.Logf("%-15s clients=%-2d inv=%-4d done=%-4d rate=%.3f p50=%.1fms p99=%.1fms failovers=%d sheds=%d drop=%.1fms",
			pt.Scenario, pt.Clients, pt.Invocations, pt.Completed, pt.CompletionRate,
			pt.P50*1e3, pt.P99*1e3, pt.Failovers, pt.Sheds, pt.DropSeconds*1e3)
	}
	for _, name := range []string{"healthy", "killed", "overload-shed", "overload-noshed"} {
		if _, ok := byScenario[name]; !ok {
			t.Fatalf("serve figure missing scenario %q", name)
		}
	}

	healthy := byScenario["healthy"]
	if healthy.CompletionRate != 1 {
		t.Errorf("healthy completion %.4f, want 1.0 — the baseline cell must be loss-free",
			healthy.CompletionRate)
	}

	killed := byScenario["killed"]
	if killed.CompletionRate < 0.99 {
		t.Errorf("killed completion %.4f, want >= 0.99: failover is not recovering the dead member's share",
			killed.CompletionRate)
	}
	if killed.Failovers == 0 {
		t.Error("killed scenario saw no failovers: the kill never bit, gate is vacuous")
	}
	// Membership hygiene: the corpse must age out of resolve_group within
	// the TTL of two heartbeat periods (2 x 50ms), plus the controller's
	// polling quantum.
	const ttl, pollSlack = 0.100, 0.025
	if killed.DropSeconds <= 0 {
		t.Error("killed scenario never observed the member drop")
	} else if killed.DropSeconds > ttl+pollSlack {
		t.Errorf("dead member resolvable for %.1fms, want <= %.1fms (TTL + poll quantum)",
			killed.DropSeconds*1e3, (ttl+pollSlack)*1e3)
	}

	shed, noshed := byScenario["overload-shed"], byScenario["overload-noshed"]
	if shed.Sheds == 0 {
		t.Error("overload-shed scenario shed nothing: admission control never engaged")
	}
	if shed.P99 >= noshed.P99 {
		t.Errorf("admission control lost its own gate: shed p99 %.1fms >= no-admission p99 %.1fms",
			shed.P99*1e3, noshed.P99*1e3)
	}
	// Under sustained overload the shed cell trades completion for bounded
	// latency: an invocation that is refused by every member within its
	// attempt budget fails explicitly rather than queueing. The majority
	// must still get through — admission control sheds the excess, it does
	// not collapse the service.
	if shed.CompletionRate < 0.7 {
		t.Errorf("overload-shed completion %.4f, want >= 0.7 — shedding is rejecting far more than the excess",
			shed.CompletionRate)
	}
	if noshed.CompletionRate != 1 {
		t.Errorf("overload-noshed completion %.4f, want 1.0 — without admission control everything queues and completes",
			noshed.CompletionRate)
	}
}
