# Developer entry points. `make ci` is what the CI script runs; the bench
# targets reproduce the paper figures and the Go micro-benchmarks behind the
# zero-copy data path.

GO ?= go

.PHONY: all build vet test race bench bench-figures ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Allocation-sensitive micro-benchmarks of the bulk data path.
bench:
	$(GO) test -run - -bench 'CDRDoubles|ORBRoundTrip|DSeqRedistribute' -benchmem -benchtime=20x .

# Paper-figure reproduction, as a machine-readable JSON summary.
bench-figures:
	$(GO) run ./cmd/pardis-bench -quick -json

ci:
	./ci.sh
