// Observability gates: tracing overhead on the ORB round trip and hygiene of
// every metric name registered on the default registry. This package imports
// every PARDIS layer, so the registry seen here is the one a deployed
// process exposes.
package pardis_test

import (
	"os"
	"strings"
	"testing"

	"pardis/internal/nexus"
	"pardis/internal/obs"
)

// measureRoundTrip benchmarks the 64-byte TCP echo round trip (the same
// shape as BenchmarkORBRoundTripTCP/payload64) under the current tracer
// state.
func measureRoundTrip() testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		cep, err := nexus.NewTCPEndpoint("")
		if err != nil {
			b.Fatal(err)
		}
		sep, err := nexus.NewTCPEndpoint("")
		if err != nil {
			b.Fatal(err)
		}
		bind, stop := orbPair(b, cep, sep)
		defer stop()
		benchRoundTrip(b, bind, 64)
	})
}

// TestTracingOverheadGate is the CI overhead guard: enabling span recording
// may cost at most 5% in allocs/op on the ORB round trip — which in practice
// means zero extra allocations, since the span ring is bounded and span IDs
// are atomic adds. The ns/op half of the guard runs only when
// PARDIS_OVERHEAD_GATE=1 (ci.sh sets it): wall-time ratios between two
// back-to-back benchmark runs are too noisy for an always-on assertion on a
// loaded developer machine.
func TestTracingOverheadGate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation and timing measurements are not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("benchmark pair takes seconds; skipped with -short")
	}
	// Alternate off/ring/recorder runs and take the minimum of each: the
	// round trip is microseconds, so scheduler and GC noise between two
	// single benchmark invocations swamps the quantity under test.
	// Interleaving cancels heap-growth drift across runs; the per-state
	// minimum is the standard micro-benchmark de-noiser. The flight
	// recorder is held to the same bound as the ring: its boring path
	// (every benchmark invocation is boring) recycles pooled buffers, so
	// recording must stay amortized-allocation-free.
	var off, on, rec testing.BenchmarkResult
	for i := 0; i < 3; i++ {
		obs.DefaultTracer.Reset()
		o := measureRoundTrip()
		obs.DefaultTracer.Reset()
		obs.DefaultTracer.SetEnabled(true)
		n := measureRoundTrip()
		obs.DefaultTracer.SetEnabled(false)
		obs.DefaultTracer.EnableRecorder(obs.RecorderConfig{})
		r := measureRoundTrip()
		obs.DefaultTracer.DisableRecorder()
		obs.DefaultTracer.SetEnabled(false)
		if i == 0 || o.NsPerOp() < off.NsPerOp() {
			off = o
		}
		if i == 0 || n.NsPerOp() < on.NsPerOp() {
			on = n
		}
		if i == 0 || r.NsPerOp() < rec.NsPerOp() {
			rec = r
		}
	}
	obs.DefaultTracer.Reset()

	offAllocs, onAllocs, recAllocs := off.AllocsPerOp(), on.AllocsPerOp(), rec.AllocsPerOp()
	t.Logf("tracing off: %d ns/op, %d allocs/op; ring: %d ns/op, %d allocs/op; recorder: %d ns/op, %d allocs/op",
		off.NsPerOp(), offAllocs, on.NsPerOp(), onAllocs, rec.NsPerOp(), recAllocs)
	// +0.5 absorbs integer rounding of the amortized ring-growth allocations.
	if float64(onAllocs) > float64(offAllocs)*1.05+0.5 {
		t.Errorf("tracing costs allocations: %d -> %d allocs/op (> 5%%)", offAllocs, onAllocs)
	}
	if float64(recAllocs) > float64(offAllocs)*1.05+0.5 {
		t.Errorf("flight recorder costs allocations: %d -> %d allocs/op (> 5%%)", offAllocs, recAllocs)
	}
	if os.Getenv("PARDIS_OVERHEAD_GATE") == "1" {
		// 5% relative, with a 3µs absolute floor: the multiplexed
		// transport and event-driven POA wakeup brought the round trip
		// from ~1ms down to ~12µs, where a purely relative bound would
		// assert on the cost of reading the clock twice per span (~15
		// spans/op) rather than on regressions. The floor still fails
		// the gate if tracing ever grows per-span work — a pathological
		// recorder costs tens of microseconds, not three.
		limit := float64(off.NsPerOp())*1.05 + 3000
		if float64(on.NsPerOp()) > limit {
			t.Errorf("tracing latency overhead: %d -> %d ns/op (> 5%% + 3µs)", off.NsPerOp(), on.NsPerOp())
		}
		if float64(rec.NsPerOp()) > limit {
			t.Errorf("flight recorder latency overhead: %d -> %d ns/op (> 5%% + 3µs)", off.NsPerOp(), rec.NsPerOp())
		}
	}
}

// TestMetricNameHygiene is the registry lint: every name registered by any
// package init in the tree (this test binary links them all) must be unique
// and well-formed, and the instruments the introspection endpoint is
// documented to serve must actually exist.
func TestMetricNameHygiene(t *testing.T) {
	names := obs.Default.Names()
	if len(names) == 0 {
		t.Fatal("default registry is empty — package metric inits did not run")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if err := obs.CheckName(n); err != nil {
			t.Errorf("malformed metric name %q: %v", n, err)
		}
		if seen[n] {
			t.Errorf("duplicate metric name %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{
		"orb_requests_total",
		"orb_request_latency_seconds",
		"orb_retries_total",
		"orb_timeouts_total",
		"orb_cancels_total",
		"poa_dispatches_total",
		"poa_dispatch_latency_seconds",
		"poa_dispatch_pool_depth",
		"poa_faults_total",
		"rts_collective_rounds_total",
		"dist_schedule_cache_hits_total",
		"dist_schedule_cache_hit_rate",
		"future_cells_total",
		"nexus_tcp_connections_live",
		"nexus_tcp_bytes_in_total",
		"nexus_tcp_bytes_out_total",
		"nexus_tcp_coalesced_flushes_total",
		"nexus_tcp_coalesced_frames_total",
		"orb_pipeline_depth",
		"rts_bcast_payload_bytes",
		"rts_gather_payload_bytes",
		"rts_allgather_payload_bytes",
		"rts_reduce_payload_bytes",
		"tune_decisions_total",
		"tune_probes_total",
		"tune_switches_total",
		"poa_dispatch_pool_workers",
		"poa_dispatch_pool_resizes_total",
		"stream_chunks_total",
		"stream_peak_buffer_bytes",
		"poa_shed_total",
		"group_failovers_total",
		"group_members",
		"group_resolves_total",
		"group_load_reports_total",
		"group_expired_total",
		"trace_spans_dropped_total",
		"trace_retained_total",
		"trace_recycled_total",
		"orb_slo",
		"poa_slo",
	} {
		if !seen[want] {
			t.Errorf("registry is missing %q", want)
		}
	}

	// The Prometheus exposition must carry every registered name.
	var sb strings.Builder
	if err := obs.Default.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, n := range names {
		if !strings.Contains(text, n) {
			t.Errorf("prometheus exposition dropped %q", n)
		}
	}
}
