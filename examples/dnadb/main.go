// Dnadb reproduces the paper's §4.2 scenario: a DNA database held by an
// SPMD object is searched in parallel; periodically the partial results are
// collected into five lists (exact substring matches plus the four
// edit-distance derivatives), each owned by a *single* object distributed
// over the computing threads of the same parallel server. While the search
// runs, the server makes the list objects reachable by calling
// POA::ProcessRequests(), and the client polls the search future while
// issuing non-blocking match queries — the paper's listing, futures,
// resolved() poll and all.
//
// Run with:
//
//	go run ./examples/dnadb
package main

import (
	"fmt"
	"log"
	"sync"

	"pardis/internal/apps"
	"pardis/internal/core"
	"pardis/internal/nexus"
	"pardis/internal/poa"
	"pardis/internal/rts"
)

const (
	serverThreads = 4
	dbSequences   = 2000
	seqLength     = 60
	searchRounds  = 5 // partial-result collection points per search
	tagPartial    = rts.Tag(0x3000)
	tagIOR        = rts.Tag(0x3100)
)

// listState is the five result lists, each owned by one computing thread.
type listState struct {
	mu    sync.Mutex
	lists [apps.NumDerivatives][]string
}

func (ls *listState) set(kind apps.DerivativeKind, items []string) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.lists[kind] = items
}

func (ls *listState) get(kind apps.DerivativeKind) []string {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return append([]string(nil), ls.lists[kind]...)
}

// owner maps a list category to its owning computing thread: round-robin by
// count — the paper's distributed placement.
func owner(kind apps.DerivativeKind) int { return int(kind) % serverThreads }

// dbImpl implements the generated DnaDbServant interface on each thread.
type dbImpl struct {
	shard []string // this thread's portion of the database
	state *listState
}

func (d *dbImpl) Search(ctx *poa.Context, s string) (uint32, error) {
	th := ctx.Thread
	found := false
	chunk := (len(d.shard) + searchRounds - 1) / searchRounds
	var partial [apps.NumDerivatives][]string
	for r := 0; r < searchRounds; r++ {
		lo, hi := r*chunk, min((r+1)*chunk, len(d.shard))
		if lo < hi {
			res := apps.SearchAll(d.shard[lo:hi], s)
			for k := range res {
				partial[k] = append(partial[k], res[k]...)
			}
		}
		// Collect each category at its owner through the run-time system.
		for k := apps.Exact; k < apps.NumDerivatives; k++ {
			own := owner(k)
			if th.Rank() != own {
				th.Send(own, tagPartial+rts.Tag(k), encodeList(partial[k]))
				continue
			}
			merged := append([]string(nil), partial[k]...)
			for i := 0; i < th.Size()-1; i++ {
				m := th.Recv(rts.AnySource, tagPartial+rts.Tag(k))
				merged = append(merged, decodeList(m.Data)...)
			}
			d.state.set(k, merged)
			if k == apps.Exact && len(merged) > 0 {
				found = true
			}
		}
		// The paper's POA::process_requests(): serve list queries now.
		ctx.POA.ProcessRequests()
	}
	// The reply is assembled by thread 0, which owns the Exact list, so
	// its notion of "found" is the authoritative one.
	if found {
		return StatusFOUND, nil
	}
	return StatusNOTFOUND, nil
}

// listImpl implements the generated ListServerServant interface for one
// category's single object.
type listImpl struct {
	kind  apps.DerivativeKind
	state *listState
}

func (l *listImpl) Match(_ *poa.Context, s string) ([]string, error) {
	// The stored lists were built for the active search query; a fuller
	// system would filter by s — the interaction shape is the paper's.
	_ = s
	return l.state.get(l.kind), nil
}

func encodeList(items []string) []byte {
	var out []byte
	for _, s := range items {
		out = append(out, byte(len(s)))
		out = append(out, s...)
	}
	return out
}

func decodeList(b []byte) []string {
	var out []string
	for len(b) > 0 {
		n := int(b[0])
		out = append(out, string(b[1:1+n]))
		b = b[1+n:]
	}
	return out
}

// serverIORs carries the database object's reference and one per list
// category.
type serverIORs struct {
	db    core.IOR
	lists [apps.NumDerivatives]core.IOR
}

func startServer(fab *nexus.Inproc, db []string) (serverIORs, *sync.WaitGroup) {
	iorCh := make(chan serverIORs, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		state := &listState{}
		rts.NewChanGroup("dna-host", serverThreads).Run(func(th rts.Thread) {
			router := core.NewRouter(fab.NewEndpoint(fmt.Sprintf("dna-%d", th.Rank())))
			adapter := poa.New(th, router, nil)

			per := (len(db) + th.Size() - 1) / th.Size()
			lo, hi := th.Rank()*per, min((th.Rank()+1)*per, len(db))
			impl := &dbImpl{shard: db[lo:hi], state: state}

			dbIOR, err := RegisterDnaDbSPMD(adapter, "dna-db-1", impl)
			if err != nil {
				log.Fatal(err)
			}
			// Each thread instantiates the single list objects it owns —
			// SPMD and single objects sharing one parallel server (§3.1) —
			// and ships their IORs to thread 0.
			for k := apps.Exact; k < apps.NumDerivatives; k++ {
				if owner(k) != th.Rank() {
					continue
				}
				ior, err := RegisterListServerSingle(adapter, "list-"+k.Name(), &listImpl{kind: k, state: state})
				if err != nil {
					log.Fatal(err)
				}
				th.Send(0, tagIOR+rts.Tag(k), []byte(ior.String()))
			}
			if th.Rank() == 0 {
				out := serverIORs{db: dbIOR}
				for k := apps.Exact; k < apps.NumDerivatives; k++ {
					m := th.Recv(rts.AnySource, tagIOR+rts.Tag(k))
					ior, err := core.ParseIOR(string(m.Data))
					if err != nil {
						log.Fatal(err)
					}
					out.lists[k] = ior
				}
				iorCh <- out
			}
			th.Barrier()
			adapter.ImplIsReady()
		})
	}()
	return <-iorCh, &wg
}

func main() {
	fab := nexus.NewInproc()
	db := apps.GenerateDNA(dbSequences, seqLength, 1997)
	refs, wg := startServer(fab, db)

	// --- Client: the paper's §4.2 listing. ------------------------------
	orb := core.NewORB(core.NewRouter(fab.NewEndpoint("client")), nil, nil)
	dnaDatabase, err := SPMDBindDnaDb(orb, refs.db)
	if err != nil {
		log.Fatal(err)
	}
	var lists [apps.NumDerivatives]*ListServer
	for k := apps.Exact; k < apps.NumDerivatives; k++ {
		lists[k], err = BindListServer(orb, refs.lists[k])
		if err != nil {
			log.Fatal(err)
		}
	}
	substringListSrv := lists[apps.Exact]
	transposeListSrv := lists[apps.Transposition]

	// stat = dna_database->search_nb("ABCD");
	query := "ACGT"
	stat, err := dnaDatabase.SearchNB(query)
	if err != nil {
		log.Fatal(err)
	}
	polls := 0
	// while (!stat.resolved()) { ... issue non-blocking match queries ... }
	for !stat.Resolved() {
		f1, err := substringListSrv.MatchNB("DDD")
		if err != nil {
			log.Fatal(err)
		}
		f2, err := transposeListSrv.MatchNB("AAA")
		if err != nil {
			log.Fatal(err)
		}
		l1, l2 := f1.MustGet(), f2.MustGet()
		polls++
		if polls <= 3 || polls%50 == 0 {
			fmt.Printf("  mid-search poll %d: substring list %d entries, transpose list %d entries\n",
				polls, len(l1), len(l2))
		}
	}
	status := stat.MustGet()
	if status == StatusFOUND {
		fmt.Printf("search resolved after %d polls: FOUND\n", polls)
	} else {
		fmt.Printf("search resolved after %d polls: NOT_FOUND\n", polls)
	}

	// Final processing: one more query per list server.
	for k := apps.Exact; k < apps.NumDerivatives; k++ {
		l, err := lists[k].Match("DDD")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("final %-12s list: %4d sequences\n", apps.DerivativeKind(k).Name(), len(l))
	}

	// Sanity: the search's final exact list matches a sequential search.
	want := apps.SearchDB(db, query, apps.Exact)
	got, _ := substringListSrv.Match("x")
	if len(got) != len(want) {
		log.Fatalf("exact list has %d entries, sequential search finds %d", len(got), len(want))
	}
	fmt.Println("exact list agrees with sequential oracle")

	dnaDatabase.Binding().Shutdown("done")
	wg.Wait()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
