// Idlcompile demonstrates the PARDIS IDL compiler as a library: it compiles
// the paper's §4.1 interfaces and prints a summary of the semantic model
// and a fragment of the generated Go stubs, in all three mapping modes.
//
// Run with:
//
//	go run ./examples/idlcompile
package main

import (
	"fmt"
	"log"
	"strings"

	"pardis/internal/idl"
	"pardis/internal/idlgen"
)

const source = `
// The paper's section 4.1 interfaces.
typedef sequence<double> row;
typedef dsequence<row> matrix;
typedef dsequence<double> vector;

interface direct {
    void solve(in matrix A, in vector B, out vector X);
};
interface iterative {
    void solve(in double tol, in matrix A, in vector B, out vector X);
};

// The paper's section 4.3 interfaces, with package-mapping pragmas.
const long N = 128;
#pragma HPC++:vector
#pragma POOMA:field
typedef dsequence<double, N*N, BLOCK, BLOCK> field;
interface visualizer {
    void show(in field myfield);
};
`

func main() {
	spec, err := idl.Compile(source)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== semantic model ===")
	for _, c := range spec.Consts {
		fmt.Printf("const %s = %d\n", c.Name, c.Value)
	}
	for _, td := range spec.Typedefs {
		fmt.Printf("typedef %s : %v", td.Name, td.TC)
		for _, prag := range td.Pragmas {
			fmt.Printf("  [#pragma %s:%s]", prag.Package, prag.Target)
		}
		fmt.Println()
	}
	for _, ii := range spec.Interfaces {
		fmt.Printf("interface %s\n", ii.Name)
		for _, op := range ii.Ops {
			var params []string
			for _, prm := range op.Params {
				kind := ""
				if prm.Distributed() {
					kind = " [distributed]"
				}
				params = append(params, fmt.Sprintf("%s %s: %v%s", prm.Dir, prm.Name, prm.TC, kind))
			}
			ret := "void"
			if op.Ret != nil {
				ret = op.Ret.String()
			}
			fmt.Printf("  %s %s(%s)\n", ret, op.Name, strings.Join(params, ", "))
		}
	}

	for _, mapping := range []string{"", "POOMA", "HPC++"} {
		label := mapping
		if label == "" {
			label = "plain"
		}
		code, err := idlgen.Generate(spec, idlgen.Options{Package: "demo", Mapping: mapping})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== generated stubs (%s mapping): visualizer.show ===\n", label)
		for _, line := range strings.Split(string(code), "\n") {
			if strings.Contains(line, ") Show(") || strings.Contains(line, ") ShowNB(") {
				fmt.Println(strings.TrimSpace(line))
			}
		}
		fmt.Printf("(full file: %d lines)\n", strings.Count(string(code), "\n"))
	}
}
