// Pipeline reproduces the paper's §4.3 metaapplication: a POOMA diffusion
// simulation pipelines its field every n-th time-step to an HPC++ PSTL
// gradient server, and both components ship every completed step to
// visualizer servers — all through non-blocking invocations.
//
// The three generated packages mirror the paper's three IDL compiler
// invocations over the same pipeline.idl:
//
//	pardis-idl -pooma  -> poomagen  (diffusion client: fields)
//	pardis-idl -hpcxx  -> pstlgen   (gradient server: distributed vectors)
//	pardis-idl         -> vizgen    (visualizer servers: plain sequences)
//
// Run with:
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"sync"

	"pardis/examples/pipeline/poomagen"
	"pardis/examples/pipeline/pstlgen"
	"pardis/examples/pipeline/vizgen"

	"pardis/internal/core"
	"pardis/internal/dseq"
	"pardis/internal/future"
	"pardis/internal/nexus"
	"pardis/internal/poa"
	"pardis/internal/pooma"
	"pardis/internal/pstl"
	"pardis/internal/rts"
)

const (
	gridN         = 64 // grid edge (the paper used 128; kept smaller here)
	steps         = 50 // diffusion time-steps (the paper used 100)
	gradientEvery = 5  // pipeline the field to the gradient every n-th step
	alpha         = 0.01
	procs         = 2 // threads of the diffusion client and gradient server
)

// vizImpl implements the generated vizgen.VisualizerServant: it renders by
// counting frames and remembering the last field's mean.
type vizImpl struct {
	name     string
	mu       sync.Mutex
	frames   int
	lastMean float64
}

func (v *vizImpl) Show(_ *poa.Context, myfield *dseq.DSeq[float64]) error {
	sum := 0.0
	for _, x := range myfield.Local() {
		sum += x
	}
	v.mu.Lock()
	v.frames++
	v.lastMean = sum / float64(myfield.GlobalLen())
	v.mu.Unlock()
	return nil
}

func (v *vizImpl) report() {
	v.mu.Lock()
	defer v.mu.Unlock()
	fmt.Printf("  [%s] %d frames, last mean %.6f\n", v.name, v.frames, v.lastMean)
}

// startVisualizer launches a one-thread visualizer server (a "sequential
// process" in the paper's words; PARDIS-wise a one-thread SPMD object,
// since its show() takes a distributed argument).
func startVisualizer(fab *nexus.Inproc, name string) (core.IOR, *vizImpl, *sync.WaitGroup) {
	impl := &vizImpl{name: name}
	iorCh := make(chan core.IOR, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := rts.NewChanGroup(name+"-host", 1).Thread(0)
		router := core.NewRouter(fab.NewEndpoint(name))
		adapter := poa.New(th, router, nil)
		ior, err := vizgen.RegisterVisualizerSPMD(adapter, name, impl)
		if err != nil {
			log.Fatal(err)
		}
		iorCh <- ior
		adapter.ImplIsReady()
	}()
	return <-iorCh, impl, &wg
}

// gradientImpl implements the generated pstlgen.FieldOperationsServant: it
// computes the magnitude gradient of the incoming field and pipelines the
// result to its own visualizer — a server acting as a client.
type gradientImpl struct {
	vizIOR   core.IOR
	viz      *pstlgen.Visualizer
	orb      *core.ORB
	requests int
	lastShow future.Done
	haveShow bool
}

func (g *gradientImpl) Gradient(ctx *poa.Context, myfield *pstl.DistVector) error {
	th := ctx.Thread
	if g.viz == nil {
		// Collective lazy bind: all threads reach here together.
		v, err := pstlgen.SPMDBindVisualizer(g.orb, g.vizIOR)
		if err != nil {
			return err
		}
		g.viz = v
	}
	out := pstl.VectorFromDSeq(dseq.NewFromLayout[float64](th, myfield.AsDSeq().DLayout(), dseq.Float64Codec{}))
	pstl.Gradient2D(myfield, out, gridN, gridN)
	done, err := g.viz.ShowNB(out)
	if err != nil {
		return err
	}
	g.lastShow, g.haveShow = done, true
	g.requests++
	return nil
}

// startGradientServer launches the HPC++ PSTL gradient component.
func startGradientServer(fab *nexus.Inproc, vizIOR core.IOR) (core.IOR, *sync.WaitGroup) {
	iorCh := make(chan core.IOR, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rts.NewChanGroup("sp2", procs).Run(func(th rts.Thread) {
			router := core.NewRouter(fab.NewEndpoint(fmt.Sprintf("gradient-%d", th.Rank())))
			orb := core.NewORB(router, th, nil) // client role toward the visualizer
			adapter := poa.New(th, router, nil) // server role for the diffusion unit
			impl := &gradientImpl{vizIOR: vizIOR, orb: orb}
			ior, err := pstlgen.RegisterFieldOperationsSPMD(adapter, "gradient-1", impl)
			if err != nil {
				log.Fatal(err)
			}
			if th.Rank() == 0 {
				iorCh <- ior
			}
			adapter.ImplIsReady()
			// Drain the last pipelined show before exiting.
			if impl.haveShow {
				if err := impl.lastShow.Wait(); err != nil {
					log.Printf("gradient viz flush: %v", err)
				}
			}
		})
	}()
	return <-iorCh, &wg
}

func main() {
	fab := nexus.NewInproc()

	// Two visualizers: one beside the diffusion unit, one for the
	// gradient component (the paper's SGI Indy).
	vizDiffIOR, vizDiff, wgV1 := startVisualizer(fab, "viz-diffusion")
	vizGradIOR, vizGrad, wgV2 := startVisualizer(fab, "viz-gradient")
	gradIOR, wgG := startGradientServer(fab, vizGradIOR)

	// --- Diffusion unit: a POOMA application acting as parallel client. --
	rts.NewChanGroup("sgi-pc", procs).Run(func(th rts.Thread) {
		router := core.NewRouter(fab.NewEndpoint(fmt.Sprintf("diffusion-%d", th.Rank())))
		orb := core.NewORB(router, th, nil)
		viz, err := poomagen.SPMDBindVisualizer(orb, vizDiffIOR)
		if err != nil {
			log.Fatal(err)
		}
		grad, err := poomagen.SPMDBindFieldOperations(orb, gradIOR)
		if err != nil {
			log.Fatal(err)
		}

		// The POOMA simulation: 9-point stencil diffusion.
		f := pooma.NewField(th, gridN, gridN)
		tmp := pooma.NewField(th, gridN, gridN)
		f.Fill(func(x, y int) float64 {
			if x == gridN/2 && y == gridN/2 {
				return 1000
			}
			return 0
		})

		var pending []future.Done
		for step := 1; step <= steps; step++ {
			f.Step(tmp, alpha)
			f, tmp = tmp, f
			// Pipeline every completed step to the visualizer...
			d, err := viz.ShowNB(f)
			if err != nil {
				log.Fatal(err)
			}
			pending = append(pending, d)
			// ...and every n-th step to the gradient component.
			if step%gradientEvery == 0 {
				d, err := grad.GradientNB(f)
				if err != nil {
					log.Fatal(err)
				}
				pending = append(pending, d)
			}
		}
		// Resolve the pipeline tail.
		for _, d := range pending {
			if err := d.Wait(); err != nil {
				log.Fatal(err)
			}
		}
		th.Barrier()
		if th.Rank() == 0 {
			fmt.Printf("diffusion finished %d steps (%d gradient requests)\n", steps, steps/gradientEvery)
			grad.Binding().Shutdown("done")
			viz.Binding().Shutdown("done")
		}
	})

	wgG.Wait()
	// The gradient server's visualizer is shut down after the gradient
	// server has flushed its pipeline.
	stopViz := core.NewORB(core.NewRouter(fab.NewEndpoint("stopper")), nil, nil)
	if b, err := stopViz.Bind(vizGradIOR, vizgen.VisualizerIDL()); err == nil {
		b.Shutdown("done")
	}
	wgV1.Wait()
	wgV2.Wait()
	vizDiff.report()
	vizGrad.report()
	if vizDiff.frames != steps || vizGrad.frames != steps/gradientEvery {
		log.Fatalf("frame counts wrong: %d/%d", vizDiff.frames, vizGrad.frames)
	}
	fmt.Println("pipeline example completed")
}
