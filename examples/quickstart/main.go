// Quickstart: a single PARDIS object, a client, blocking and non-blocking
// invocations, and a oneway fire-and-forget — the smallest end-to-end tour
// of the system.
//
// The stubs and skeleton in zz_generated.go were produced by the PARDIS IDL
// compiler from quickstart.idl:
//
//	go run ./cmd/pardis-idl -package main -o zz_generated.go quickstart.idl
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"

	"pardis/internal/core"
	"pardis/internal/nexus"
	"pardis/internal/poa"
	"pardis/internal/rts"
)

// greeterImpl implements the generated GreeterServant interface.
type greeterImpl struct {
	visits []string
}

func (g *greeterImpl) Greet(_ *poa.Context, name string) (string, error) {
	if name == "" {
		return "", fmt.Errorf("who are you?")
	}
	return "Hello, " + strings.ToUpper(name) + "!", nil
}

func (g *greeterImpl) Add(_ *poa.Context, a, b int32) (int32, error) {
	return a + b, nil
}

func (g *greeterImpl) LogVisit(_ *poa.Context, who string) error {
	g.visits = append(g.visits, who)
	return nil
}

func main() {
	// One in-process transport fabric; real deployments use the TCP
	// fabric the same way (see cmd/pardis-demo).
	fab := nexus.NewInproc()

	// --- Server: one computing thread, one single object. -------------
	impl := &greeterImpl{}
	iorCh := make(chan core.IOR, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := rts.NewChanGroup("server-host", 1).Thread(0)
		router := core.NewRouter(fab.NewEndpoint("greeter-server"))
		adapter := poa.New(th, router, nil)
		ior, err := RegisterGreeterSingle(adapter, "greeter-1", impl)
		if err != nil {
			log.Fatal(err)
		}
		iorCh <- ior
		adapter.ImplIsReady() // poll for requests until deactivated
	}()
	ior := <-iorCh
	fmt.Println("server object reference:", ior.String()[:60]+"...")

	// --- Client. -------------------------------------------------------
	orb := core.NewORB(core.NewRouter(fab.NewEndpoint("client")), nil, nil)
	g, err := BindGreeter(orb, ior)
	if err != nil {
		log.Fatal(err)
	}

	// Blocking invocation.
	msg, err := g.Greet("world")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("greet:", msg)

	// Non-blocking invocations: send both, then read the futures.
	f1, err := g.AddNB(2, 40)
	if err != nil {
		log.Fatal(err)
	}
	f2, err := g.GreetNB("pardis")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("add resolved early?", f1.Resolved())
	sum, err := f1.Get()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("add:", sum)
	fmt.Println("greet #2:", f2.MustGet())

	// Oneway: returns immediately, no reply ever.
	if err := g.LogVisit("quickstart"); err != nil {
		log.Fatal(err)
	}

	// Server exceptions arrive as client-side errors.
	if _, err := g.Greet(""); err != nil {
		fmt.Println("expected exception:", err)
	}

	// Shut the server down and wait for it.
	if err := g.Binding().Shutdown("quickstart done"); err != nil {
		log.Fatal(err)
	}
	wg.Wait()
	fmt.Println("server logged visits:", impl.visits)
}
