// Linsolve reproduces the paper's §4.1 scenario: the same linear system is
// solved concurrently by a direct method and an iterative method running as
// SPMD objects on two different "hosts", and the client compares the
// returned solutions. The client code mirrors the paper's listing: a
// non-blocking invocation on the iterative solver overlaps with a blocking
// invocation on the direct solver, and the future X1 is read afterwards.
//
// Stubs in zz_generated.go come from linsolve.idl via the PARDIS IDL
// compiler. Run with:
//
//	go run ./examples/linsolve
package main

import (
	"fmt"
	"log"
	"sync"

	"pardis/internal/apps"
	"pardis/internal/core"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/nexus"
	"pardis/internal/poa"
	"pardis/internal/registry"
	"pardis/internal/rts"
)

const (
	host1 = "HOST_1" // the paper's 4-node SGI Onyx
	host2 = "HOST_2" // the paper's 10-node SGI Power Challenge
	n     = 64       // problem size (kept small: this example computes for real)
)

// directImpl implements the generated DirectServant interface: Gaussian
// elimination on gathered data, solution scattered back blockwise.
type directImpl struct{}

func (directImpl) Solve(ctx *poa.Context, A *dseq.DSeq[any], B *dseq.DSeq[float64]) (*dseq.DSeq[float64], error) {
	th := ctx.Thread
	rows := A.GatherTo(0)
	b := B.GatherTo(0)
	var full []float64
	status := ""
	if th.Rank() == 0 {
		a := make([][]float64, len(rows))
		for i, r := range rows {
			a[i] = r.([]float64)
		}
		x, err := apps.GaussSolve(a, b)
		if err != nil {
			status = err.Error()
		} else {
			full = x
		}
	}
	// Keep the error decision collective.
	if msg := string(rts.Bcast(th, 0, []byte(status))); msg != "" {
		return nil, fmt.Errorf("direct solver: %s", msg)
	}
	return dseq.Scatter(th, 0, full, A.GlobalLen(), dist.BlockTemplate(), dseq.Float64Codec{}), nil
}

// iterativeImpl implements the generated IterativeServant interface with
// the parallel Jacobi sweep; the result reuses the thread's local slice
// through the distributed sequence's no-ownership constructor.
type iterativeImpl struct{}

func (iterativeImpl) Solve(ctx *poa.Context, tol float64, A *dseq.DSeq[any], B *dseq.DSeq[float64]) (*dseq.DSeq[float64], error) {
	th := ctx.Thread
	local := A.Local()
	localA := make([][]float64, len(local))
	for i, r := range local {
		localA[i] = r.([]float64)
	}
	first := 0
	if len(localA) > 0 {
		first = A.DLayout().Start(th.Rank())
	}
	lx, iters, err := apps.JacobiSolve(th, first, localA, B.Local(), A.GlobalLen(), tol, 50_000)
	if err != nil {
		return nil, err
	}
	if th.Rank() == 0 {
		fmt.Printf("  [itrt_solver] converged in %d iterations\n", iters)
	}
	return dseq.Wrap(th, B.DLayout(), lx, dseq.Float64Codec{}), nil
}

// startSolverServer launches an SPMD solver server with p computing
// threads, registers its object with the repository under name, and leaves
// it polling in ImplIsReady.
func startSolverServer(fab *nexus.Inproc, repoAddr, name, host string, p int,
	register func(adapter *poa.POA) (core.IOR, error)) *sync.WaitGroup {

	var wg sync.WaitGroup
	wg.Add(1)
	ready := make(chan struct{})
	go func() {
		defer wg.Done()
		rts.NewChanGroup(host, p).Run(func(th rts.Thread) {
			router := core.NewRouter(fab.NewEndpoint(name))
			adapter := poa.New(th, router, nil)
			ior, err := register(adapter)
			if err != nil {
				log.Fatal(err)
			}
			if th.Rank() == 0 {
				orb := core.NewORB(core.NewRouter(fab.NewEndpoint(name+"-reg")), nil, nil)
				repo, err := registry.Open(orb, repoAddr)
				if err != nil {
					log.Fatal(err)
				}
				if err := repo.Register(name, ior); err != nil {
					log.Fatal(err)
				}
				close(ready)
			}
			th.Barrier()
			adapter.ImplIsReady()
		})
	}()
	<-ready // registration visible before any client resolves the name
	return &wg
}

func main() {
	fab := nexus.NewInproc()

	// Object repository (naming domain).
	repoAddr := startRepository(fab)

	// Two parallel servers on their respective hosts.
	wgD := startSolverServer(fab, repoAddr, "direct_solver", host1, 2,
		func(a *poa.POA) (core.IOR, error) { return RegisterDirectSPMD(a, "direct-1", directImpl{}) })
	wgI := startSolverServer(fab, repoAddr, "itrt_solver", host2, 2,
		func(a *poa.POA) (core.IOR, error) { return RegisterIterativeSPMD(a, "itrt-1", iterativeImpl{}) })

	// The known system (and its exact solution, for checking).
	a, b, exact := apps.GenerateSystem(n, 2026)

	// --- SPMD client: the paper's listing, lines 00-11. -----------------
	const clientThreads = 2
	diffCh := make(chan float64, 1)
	rts.NewChanGroup("client-host", clientThreads).Run(func(th rts.Thread) {
		orb := core.NewORB(core.NewRouter(fab.NewEndpoint(fmt.Sprintf("client-%d", th.Rank()))), th, nil)
		repo, err := registry.Open(orb, repoAddr)
		if err != nil {
			log.Fatal(err)
		}

		// 00: direct_var d_solver = direct::_spmd_bind("direct_solver", HOST_1);
		dIOR, err := repo.Resolve(orb, "direct_solver", host1)
		if err != nil {
			log.Fatal(err)
		}
		dSolver, err := SPMDBindDirect(orb, dIOR)
		if err != nil {
			log.Fatal(err)
		}
		// 01: iterative_var i_solver = iterative::_spmd_bind("itrt_solver", HOST_2);
		iIOR, err := repo.Resolve(orb, "itrt_solver", host2)
		if err != nil {
			log.Fatal(err)
		}
		iSolver, err := SPMDBindIterative(orb, iIOR)
		if err != nil {
			log.Fatal(err)
		}

		// 02-04: matrix A(N); vector B(N); initialize_system(A, B);
		A := dseq.New[any](th, n, dist.BlockTemplate(), dseq.AnyCodec{TC: RowTC()})
		B := dseq.New[float64](th, n, dist.BlockTemplate(), dseq.Float64Codec{})
		for loc := range A.Local() {
			g := A.DLayout().GlobalIndex(th.Rank(), loc)
			A.Local()[loc] = append([]float64(nil), a[g]...)
			B.Local()[loc] = b[g]
		}

		// 07-08: non-blocking invocation on the remote iterative solver...
		tolerance := 0.000001
		x1Future, err := iSolver.SolveNB(tolerance, A, B)
		if err != nil {
			log.Fatal(err)
		}
		// 09: ...overlapped with a blocking one on the direct solver.
		x2Real, err := dSolver.Solve(A, B)
		if err != nil {
			log.Fatal(err)
		}
		// 10: X1_real = X1; (reading the future blocks until resolved)
		x1Real := x1Future.MustGet()

		// 11: double difference = compute_difference(X1_real, X2_real);
		x1 := x1Real.GatherTo(0)
		x2 := x2Real.GatherTo(0)
		if th.Rank() == 0 {
			difference := apps.MaxDiff(x1, x2)
			fmt.Printf("agreement of methods: max |x1-x2| = %.2e\n", difference)
			fmt.Printf("against exact solution: direct %.2e, iterative %.2e\n",
				apps.MaxDiff(x2, exact), apps.MaxDiff(x1, exact))
			diffCh <- difference
			dSolver.Binding().Shutdown("done")
			iSolver.Binding().Shutdown("done")
		}
	})

	wgD.Wait()
	wgI.Wait()
	if d := <-diffCh; d > 1e-4 {
		log.Fatalf("methods disagree: %v", d)
	}
	fmt.Println("linsolve example completed")
}

// startRepository runs the object repository server and returns its
// transport address.
func startRepository(fab *nexus.Inproc) string {
	addrCh := make(chan string, 1)
	go func() {
		th := rts.NewChanGroup("repo-host", 1).Thread(0)
		router := core.NewRouter(fab.NewEndpoint("repository"))
		adapter := poa.New(th, router, nil)
		if _, err := adapter.RegisterSingle(registry.RepositoryKey, registry.Iface(), registry.NewRepository()); err != nil {
			log.Fatal(err)
		}
		addrCh <- string(router.Addr())
		adapter.ImplIsReady()
	}()
	return <-addrCh
}
