package pardis_test

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes every runnable example end-to-end and checks a
// landmark line of its output — the examples are the paper's §4 scenarios,
// so this is the repository's integration smoke test.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run the full stack; skipped with -short")
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"quickstart", []string{"run", "./examples/quickstart"}, "add: 42"},
		{"linsolve", []string{"run", "./examples/linsolve"}, "linsolve example completed"},
		{"dnadb", []string{"run", "./examples/dnadb"}, "exact list agrees with sequential oracle"},
		{"pipeline", []string{"run", "./examples/pipeline"}, "pipeline example completed"},
		{"idlcompile", []string{"run", "./examples/idlcompile"}, "generated stubs (POOMA mapping)"},
		{"tcp-demo", []string{"run", "./cmd/pardis-demo", "-role", "all"}, "all values verified"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			done := make(chan struct{})
			cmd := exec.Command("go", c.args...)
			var out []byte
			var err error
			go func() {
				out, err = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(120 * time.Second):
				if cmd.Process != nil {
					cmd.Process.Kill()
				}
				<-done
				t.Fatalf("example timed out; output so far:\n%s", out)
			}
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("output lacks %q:\n%s", c.want, out)
			}
		})
	}
}
