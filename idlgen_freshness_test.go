package pardis_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pardis/internal/idl"
	"pardis/internal/idlgen"
)

// TestGeneratedCodeUpToDate regenerates every committed zz_generated.go
// from its IDL source and fails if the compiler's output has drifted —
// the committed stubs must always be exactly what pardis-idl produces.
func TestGeneratedCodeUpToDate(t *testing.T) {
	cases := []struct {
		idlPath string
		genPath string
		pkg     string
		mapping string
	}{
		{"examples/quickstart/quickstart.idl", "examples/quickstart/zz_generated.go", "main", ""},
		{"examples/linsolve/linsolve.idl", "examples/linsolve/zz_generated.go", "main", ""},
		{"examples/dnadb/dnadb.idl", "examples/dnadb/zz_generated.go", "main", ""},
		{"examples/pipeline/pipeline.idl", "examples/pipeline/poomagen/zz_generated.go", "poomagen", "POOMA"},
		{"examples/pipeline/pipeline.idl", "examples/pipeline/pstlgen/zz_generated.go", "pstlgen", "HPC++"},
		{"examples/pipeline/pipeline.idl", "examples/pipeline/vizgen/zz_generated.go", "vizgen", ""},
		{"internal/idlgen/sample/sample.idl", "internal/idlgen/sample/zz_generated.go", "sample", ""},
	}
	for _, c := range cases {
		c := c
		t.Run(c.genPath, func(t *testing.T) {
			src, err := os.ReadFile(c.idlPath)
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Dir(c.idlPath)
			file, err := idl.ParseWithIncludes(string(src), func(name string) (string, error) {
				b, err := os.ReadFile(filepath.Join(dir, name))
				return string(b), err
			})
			if err != nil {
				t.Fatal(err)
			}
			spec, err := idl.Analyze(file)
			if err != nil {
				t.Fatal(err)
			}
			want, err := idlgen.Generate(spec, idlgen.Options{Package: c.pkg, Mapping: c.mapping})
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(c.genPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s is stale; regenerate with:\n  go run ./cmd/pardis-idl -package %s %s -o %s %s",
					c.genPath, c.pkg, mappingFlag(c.mapping), c.genPath, c.idlPath)
			}
		})
	}
}

func mappingFlag(m string) string {
	switch m {
	case "POOMA":
		return "-pooma"
	case "HPC++":
		return "-hpcxx"
	}
	return ""
}
