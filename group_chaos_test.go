// Chaos/failover soak for replicated object groups: a 4-replica group
// registered with a live repository, heartbeats pushing load reports,
// concurrent clients invoking through group bindings — and one replica
// killed mid-run. Idempotent invocations must keep completing through
// failover, a non-idempotent invocation against the corpse must surface its
// InvokeError instead of silently re-executing elsewhere, and the registry
// must age the dead member out within its TTL of two heartbeat periods.
// Everything is seeded; run under -race with the goroutine-leak check
// bracketing the whole scenario.
package pardis_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pardis/internal/core"
	"pardis/internal/nexus"
	"pardis/internal/obs"
	"pardis/internal/obs/leaktest"
	"pardis/internal/poa"
	"pardis/internal/registry"
	"pardis/internal/rts"
	"pardis/internal/typecode"
)

func groupIface() *core.InterfaceDef {
	long := typecode.TCLong
	return &core.InterfaceDef{
		Name: "group_svc",
		Ops: []core.Operation{
			{Name: "get", Params: []core.Param{core.NewParam("x", core.In, long)},
				Result: long, Idempotent: true},
			{Name: "put", Params: []core.Param{core.NewParam("x", core.In, long)},
				Result: long},
		},
	}
}

// rankServant answers with its replica index.
type rankServant struct{ rank int }

func (s *rankServant) Invoke(_ *poa.Context, op string, in []any) (any, []any, error) {
	switch op {
	case "get", "put":
		return int32(s.rank), nil, nil
	}
	return nil, nil, fmt.Errorf("no operation %s", op)
}

// startGroupReplica runs one replica server over a fault-wrapped endpoint
// and returns its IOR, its adapter (the heartbeat's load source) and a join
// func.
func startGroupReplica(t *testing.T, fab *nexus.Inproc, fi *nexus.FaultInjector, rank int) (core.IOR, *poa.POA, func()) {
	t.Helper()
	name := fmt.Sprintf("gr-replica-%d", rank)
	g := rts.NewChanGroup(name, 1)
	iorCh := make(chan core.IOR, 1)
	poaCh := make(chan *poa.POA, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := g.Thread(0)
		p := poa.New(th, core.NewRouter(fi.Wrap(fab.NewEndpoint(name))), nil)
		p.PollInterval = 20e-6
		ior, err := p.RegisterSingle(name, groupIface(), &rankServant{rank: rank})
		if err != nil {
			t.Error(err)
			return
		}
		iorCh <- ior
		poaCh <- p
		p.ImplIsReady()
	}()
	return <-iorCh, <-poaCh, wg.Wait
}

// startGroupRepo runs the repository server with the given member TTL.
func startGroupRepo(t *testing.T, fab *nexus.Inproc, ttl float64) (string, func()) {
	t.Helper()
	repo := registry.NewRepository()
	repo.SetMemberTTL(ttl)
	repo.SetPickerSeed(5)
	g := rts.NewChanGroup("gr-repo", 1)
	addrCh := make(chan string, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := g.Thread(0)
		r := core.NewRouter(fab.NewEndpoint("gr-repo"))
		p := poa.New(th, r, nil)
		p.PollInterval = 20e-6
		if _, err := p.RegisterSingle(registry.RepositoryKey, registry.Iface(), repo); err != nil {
			t.Error(err)
			return
		}
		addrCh <- string(r.Addr())
		p.ImplIsReady()
	}()
	return <-addrCh, wg.Wait
}

func newGroupClient(fab *nexus.Inproc, name string) *core.ORB {
	return core.NewORB(core.NewRouter(fab.NewEndpoint(name)), nil, nil)
}

// TestGroupChaosFailoverSoak is the acceptance scenario for replicated
// groups: 4 replicas behind one group name, 5 concurrent clients, replica 0
// killed between the two invocation phases.
func TestGroupChaosFailoverSoak(t *testing.T) {
	baseline := leaktest.Baseline()
	const (
		replicas = 4
		clients  = 5
		phase1   = 10
		phase2   = 15
		hb       = 0.1
		group    = "chaos-svc"
		victim   = 0
	)

	// The whole soak runs with the flight recorder on: at the end the
	// deterministic kill→failover below must survive as one retained trace
	// holding both sides of the invocation.
	obs.DefaultTracer.EnableRecorder(obs.RecorderConfig{})
	defer func() {
		obs.DefaultTracer.Reset()
		obs.DefaultTracer.DisableRecorder()
		obs.DefaultTracer.SetEnabled(false)
	}()

	fab := nexus.NewInproc()
	fi := nexus.NewFaultInjector(77, nexus.FaultPlan{})
	repoAddr, repoWait := startGroupRepo(t, fab, 2*hb)

	iors := make([]core.IOR, replicas)
	adapters := make([]*poa.POA, replicas)
	waits := make([]func(), replicas)
	beats := make([]*registry.Heartbeat, replicas)
	for i := 0; i < replicas; i++ {
		iors[i], adapters[i], waits[i] = startGroupReplica(t, fab, fi, i)
		hbOrb := newGroupClient(fab, fmt.Sprintf("gr-hb-%d", i))
		hbClient, err := registry.Open(hbOrb, repoAddr)
		if err != nil {
			t.Fatal(err)
		}
		// Heartbeats carry the full metrics digest — the soak doubles as the
		// federation path's integration exercise.
		beats[i] = registry.StartHeartbeatDigest(hbClient, group, fmt.Sprintf("r%d", i),
			iors[i], hb, registry.AdapterDigest(adapters[i]))
	}

	// Every client runs two phases of idempotent invocations with the kill
	// in between; each get must complete, failing over when its bound member
	// is the corpse.
	killDone := make(chan struct{})
	var phase1WG, clientWG sync.WaitGroup
	clientErrs := make(chan error, clients*(phase1+phase2))
	phase1WG.Add(clients)
	clientWG.Add(clients)
	for c := 0; c < clients; c++ {
		c := c
		go func() {
			defer clientWG.Done()
			orb := newGroupClient(fab, fmt.Sprintf("gr-cli-%d", c))
			regc, err := registry.Open(orb, repoAddr)
			if err != nil {
				phase1WG.Done()
				clientErrs <- err
				return
			}
			gb := orb.BindGroup(regc.GroupResolver(group), groupIface())
			gb.SetDeadline(0.5)
			gb.SetRetryPolicy(core.RetryPolicy{MaxAttempts: replicas, BaseBackoff: 2e-3, JitterSeed: uint64(100 + c)})
			for i := 0; i < phase1; i++ {
				if _, err := gb.Invoke("get", []any{int32(i)}); err != nil {
					clientErrs <- fmt.Errorf("client %d phase1 get %d: %w", c, i, err)
				}
			}
			phase1WG.Done()
			<-killDone
			for i := 0; i < phase2; i++ {
				if _, err := gb.Invoke("get", []any{int32(i)}); err != nil {
					clientErrs <- fmt.Errorf("client %d phase2 get %d: %w", c, i, err)
				}
			}
		}()
	}
	phase1WG.Wait()

	// The kill: stop the victim's heartbeat first (its reporter endpoint is
	// not fault-wrapped), then blackhole its serving address.
	beats[victim].Stop()
	fi.Kill(nexus.Addr(iors[victim].Addrs[0]))
	killedAt := time.Now()
	close(killDone)

	// Deterministic failover: a binding whose resolver pins the corpse first
	// must advance to the survivor and complete the idempotent invocation.
	var failoverTrace uint64
	{
		orb := newGroupClient(fab, "gr-pinned")
		gb := orb.BindGroup(func() ([]core.IOR, error) {
			return []core.IOR{iors[victim], iors[1]}, nil
		}, groupIface())
		gb.SetDeadline(0.3)
		gb.SetRetryPolicy(core.RetryPolicy{MaxAttempts: 2, JitterSeed: 9})
		vals, err := gb.Invoke("get", []any{int32(1)})
		if err != nil {
			t.Fatalf("idempotent get through dead member did not fail over: %v", err)
		}
		if vals[0] != int32(1) {
			t.Fatalf("failover answered from rank %v, want survivor 1", vals[0])
		}
		if gb.Failovers() != 1 {
			t.Fatalf("Failovers = %d, want 1", gb.Failovers())
		}
		failoverTrace = gb.LastTrace()
		if failoverTrace == 0 {
			t.Fatal("group invocation under an enabled tracer minted no trace")
		}
	}

	// Non-idempotent against the corpse: the deadline's InvokeError must
	// surface — a put may have executed before the reply vanished, so the
	// group layer must not retry it elsewhere.
	{
		orb := newGroupClient(fab, "gr-nonidem")
		gb := orb.BindGroup(func() ([]core.IOR, error) {
			return []core.IOR{iors[victim], iors[1]}, nil
		}, groupIface())
		gb.SetDeadline(0.3)
		gb.SetRetryPolicy(core.RetryPolicy{MaxAttempts: 2, JitterSeed: 10})
		_, err := gb.Invoke("put", []any{int32(2)})
		var ie *core.InvokeError
		if !errors.As(err, &ie) || !errors.Is(err, core.ErrDeadline) {
			t.Fatalf("non-idempotent put on dead member = %v, want deadline InvokeError", err)
		}
		if gb.Failovers() != 0 {
			t.Fatalf("non-idempotent put failed over %d times, want 0", gb.Failovers())
		}
	}

	// The registry must age the silent member out within its TTL of two
	// heartbeat periods (generous wall-clock slack for scheduling).
	{
		orb := newGroupClient(fab, "gr-monitor")
		regc, err := registry.Open(orb, repoAddr)
		if err != nil {
			t.Fatal(err)
		}
		deadline := killedAt.Add(time.Duration((2*hb)*float64(time.Second)) + time.Second)
		for {
			members, err := regc.ResolveGroup(group)
			if err != nil {
				t.Fatalf("resolve during aging: %v", err)
			}
			gone := true
			for _, m := range members {
				if m.Addrs[0] == iors[victim].Addrs[0] {
					gone = false
				}
			}
			if gone {
				if len(members) != replicas-1 {
					t.Fatalf("after expiry: %d members, want %d", len(members), replicas-1)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("dead member still resolvable %v after the kill (TTL %v)", time.Since(killedAt), 2*hb)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	clientWG.Wait()
	close(clientErrs)
	for err := range clientErrs {
		t.Error(err)
	}

	// The flight recorder must have kept the killed-replica failover as ONE
	// trace — marked as a failover and holding both the client-side spans
	// (stub/orb) and the surviving server's dispatch, a single cross-address-
	// space timeline under the pinned TraceID.
	{
		obs.DefaultTracer.Flush()
		var got *obs.RetainedTrace
		for _, rt := range obs.DefaultTracer.Retained() {
			if rt.Trace == failoverTrace {
				rt := rt
				if got != nil {
					t.Fatal("failover trace retained twice")
				}
				got = &rt
			}
		}
		if got == nil {
			t.Fatalf("failover trace %d not retained (%d traces kept)",
				failoverTrace, obs.DefaultTracer.RetainedCount())
		}
		if got.Marks&obs.RetainFailover == 0 {
			t.Fatalf("failover trace marks = %v, want failover", got.Marks)
		}
		layers := map[string]bool{}
		for _, sp := range got.Spans {
			layers[sp.Layer] = true
		}
		if !layers[obs.LayerStub] && !layers[obs.LayerORB] {
			t.Fatalf("failover trace has no client-side span (layers %v)", layers)
		}
		if !layers[obs.LayerPOA] && !layers[obs.LayerPGIOP] {
			t.Fatalf("failover trace has no server-side span (layers %v)", layers)
		}
	}

	// Teardown: heartbeats, replicas (the corpse still receives unwrapped
	// teardown frames), repository — then the leak check over it all.
	for i, h := range beats {
		if i != victim {
			h.Stop()
		}
	}
	shutOrb := newGroupClient(fab, "gr-shutdown")
	for i := 0; i < replicas; i++ {
		if b, err := shutOrb.Bind(iors[i], groupIface()); err == nil {
			b.Shutdown("chaos done")
		}
	}
	for _, wait := range waits {
		wait()
	}
	if b, err := shutOrb.Bind(registry.BootstrapIOR(repoAddr), registry.Iface()); err == nil {
		b.Shutdown("chaos done")
	}
	repoWait()
	leaktest.Check(t, baseline)
}
