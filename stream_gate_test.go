// Streamed-transfer gates: the bounded-memory claim of the chunked segment
// pipeline (DESIGN.md §14), asserted end to end through the real ORB/POA
// stack, and the no-regression guard for small payloads, which must take
// the single-frame fast path and match the staged sender.
package pardis_test

import (
	"testing"

	"pardis/internal/bench"
)

func TestStreamGate(t *testing.T) {
	if raceEnabled {
		t.Skip("timing and residency measurements are not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("moves 64 MiB payloads; skipped with -short")
	}

	// Memory gate: a 64 MiB transfer (out and back) in 1 MiB chunks must
	// keep peak per-move encoder residency at or under two chunks — one
	// encoding while the previous is on the wire, never more. Staging any
	// whole 16 MiB move would blow the bound by 8x.
	const chunk = 1 << 20
	pt := bench.StreamMeasure(64<<20, chunk, 1)
	t.Logf("64 MiB / 1 MiB chunks: %.4fs, %.1f MiB/s, peak buffer %d KiB, %d frames",
		pt.Seconds, pt.MBPerSec, pt.PeakBuffer>>10, pt.ChunkFrames)
	if pt.PeakBuffer <= 0 {
		t.Fatal("peak buffer watermark not recorded — chunked path did not run")
	}
	if pt.PeakBuffer > 2*chunk {
		t.Errorf("peak encoder residency %d bytes exceeds 2x the %d-byte chunk", pt.PeakBuffer, chunk)
	}
	// 64 MiB each way over 4 server ranks in 1 MiB chunks is 128 payload
	// frames; a sender quietly falling back to whole-move frames shows 8.
	if pt.ChunkFrames < 64 {
		t.Errorf("only %d chunk frames for a 64 MiB transfer; chunking did not engage", pt.ChunkFrames)
	}

	// Throughput gate: at small payloads (64 KiB, at the chunking
	// threshold) the auto path must stay within 5% of the staged baseline
	// — it takes the same single-frame fast path, so the only admissible
	// cost is the constant v3 header fields. Individual round trips on a
	// loaded host are bimodal (poll-loop wakeups), so the comparison is
	// between per-invocation minima over many probes, interleaved across
	// sessions so heap and scheduler drift cancel.
	const small = 64 << 10
	var staged, auto float64
	for i := 0; i < 3; i++ {
		s := bench.StreamMinLatency(small, -1, 60)
		a := bench.StreamMinLatency(small, 0, 60)
		if i == 0 || s < staged {
			staged = s
		}
		if i == 0 || a < auto {
			auto = a
		}
	}
	// Structural half: auto at the threshold must emit exactly as many
	// frames as staged — the single-frame fast path, no chunking.
	sp := bench.StreamMeasure(small, -1, 5)
	ap := bench.StreamMeasure(small, 0, 5)
	if ap.ChunkFrames != sp.ChunkFrames {
		t.Errorf("auto sent %d frames per round trip, staged %d; small payloads must not chunk",
			ap.ChunkFrames, sp.ChunkFrames)
	}
	t.Logf("64 KiB round trip (min): staged %.0fus, auto %.0fus", staged*1e6, auto*1e6)
	// 100us absolute floor: the round trip is a few hundred microseconds,
	// where a purely relative bound would gate on scheduler jitter.
	if auto > staged*1.05+100e-6 {
		t.Errorf("small-payload regression: auto %.0fus vs staged %.0fus (> 5%% + 100us)",
			auto*1e6, staged*1e6)
	}
}
