//go:build !race

package pardis_test

const raceEnabled = false
