module pardis

go 1.23
