#!/bin/sh
# CI gate: everything here must pass before a change lands. Kept to the Go
# toolchain only — no external dependencies.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./...

# Smoke-run the paper-figure harness and keep its JSON summary as a CI
# artifact for regression diffing. The default figure set includes the
# transfer-engine experiments (schedule cache, segment fan-out, pipelined
# dispatch throughput), so their points land in the same summary.
go run ./cmd/pardis-bench -quick -json > bench-summary.json

# One-shot pass over the transfer-engine micro-benchmarks so a broken
# concurrent path fails CI even when the unit tests are green.
go test -run NONE -bench 'ScheduleCache|SegmentFanout|SingleDispatchPipelined' -benchtime 1x .

# Same for the tree collectives and the single-frame dispatch agreement.
go test -run NONE -bench 'Bcast|AllGather|Barrier' -benchtime 1x ./internal/rts
go test -run NONE -bench 'DispatchAgreement' -benchtime 1x ./internal/poa

# Fault lane: every fault-injection / deadline / recovery test under the
# race detector (their whole point is timing races between sweeps, retries,
# late replies, and peer death).
go test -race -run Fault -count=1 ./internal/nexus ./internal/rts ./internal/poa

# Seeded chaos soak: the dead-rank and lossy-network scenarios repeated
# under fixed injection seeds. Deterministic schedules, so a failure here
# reproduces with the same -count and seed corpus; includes the
# goroutine-leak check after every iteration.
go test -run FaultChaosSoak -count=20 ./internal/poa

# Fan-in lane: the connection-scale figure (client channels multiplexed
# over shared sockets vs one socket per client) as its own JSON artifact,
# plus the end-to-end gate asserting 10k clients ride few connections with
# a >= 10x per-connection resident-memory advantage over the baseline.
go run ./cmd/pardis-bench -fig fanin -quick -json > fanin-summary.json
go test -run TestFaninGate -count=1 .

# Tuner lane: the self-tuning grid (every fixed collective algorithm vs
# the online selector, per payload x P cell) as a JSON artifact, plus the
# deterministic gate asserting tuned-within-5%-of-best on every cell and
# strictly-beats-worst on the crossover cells.
go run ./cmd/pardis-bench -fig tuner -quick -json > tuner-summary.json
go test -run TestTunerGate -count=1 .

# Stream lane: staged vs chunked segment transfer as a JSON artifact, plus
# the gate asserting bounded memory (peak per-move encoder residency <= 2x
# the chunk on a 64 MiB transfer) and no small-payload regression (<= 64 KiB
# round trips within 5% of the unchunked baseline).
go run ./cmd/pardis-bench -fig stream -quick -json > stream-summary.json
go test -run TestStreamGate -count=1 .

# Serve lane: the replicated-group serving figure (healthy / replica-killed
# / overload with and without POA admission control) as a JSON artifact,
# plus the gate asserting >= 99% idempotent completion through a mid-run
# kill, dead-member expiry within the registry TTL, and shed p99 strictly
# under the no-admission p99. The chaos soak repeats the wall-clock
# kill/failover scenario under the race detector with the leak check.
go run ./cmd/pardis-bench -fig serve -quick -json > serve-summary.json
go test -run TestServeGate -count=1 .
go test -race -run TestGroupChaosFailoverSoak -count=3 .

# Observability lane: a tracing-enabled bench run must complete and export
# a non-empty Chrome trace (the 4-rank SPMD section runs first, so its
# spans are always captured); the overhead guard must hold — allocs/op
# always, ns/op too under PARDIS_OVERHEAD_GATE=1 — and every metric name
# registered anywhere in the linked tree must be unique and well-formed.
go run ./cmd/pardis-bench -fig transfer -quick -trace trace.json > /dev/null
test -s trace.json
PARDIS_OVERHEAD_GATE=1 go test -run 'TestTracingOverheadGate|TestMetricNameHygiene' -count=1 .

# Obs-plane lane: the flight-recorder / federation figure (recording
# overhead by interesting fraction, tail-retention recall under a mixed
# load, federation-page scrape cost) as a JSON artifact, plus the gate
# asserting >= 95% of interesting traces retained, the boring bulk
# recycled, and the retained set within its configured bound.
go run ./cmd/pardis-bench -fig obs -quick -json > obs-summary.json
go test -run TestObsPlaneGate -count=1 .
