// Benchmarks regenerating the paper's evaluation (one per figure, plus the
// ablations of DESIGN.md) and real-time micro-benchmarks of the fast paths.
//
// The figure benchmarks run the deterministic virtual-time experiments and
// report the modeled result as vsec_* metrics; ns/op for them measures the
// harness itself. The micro-benchmarks measure real wall time of the
// marshaling, transport and ORB paths. Full sweeps with the paper's
// parameters: `go run ./cmd/pardis-bench`.
package pardis_test

import (
	"fmt"
	"sync"
	"testing"

	"pardis/internal/bench"
	"pardis/internal/cdr"
	"pardis/internal/core"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/future"
	"pardis/internal/nexus"
	"pardis/internal/poa"
	"pardis/internal/rts"
	"pardis/internal/typecode"
)

// BenchmarkFigure2 regenerates Figure 2 (distributed vs local solver
// execution) at a representative problem size.
func BenchmarkFigure2(b *testing.B) {
	var last bench.Fig2Point
	for i := 0; i < b.N; i++ {
		last = bench.Figure2([]int{600})[0]
	}
	b.ReportMetric(last.Direct, "vsec_direct")
	b.ReportMetric(last.Iterative, "vsec_iterative")
	b.ReportMetric(last.Distributed, "vsec_distributed")
	b.ReportMetric(last.SameServer, "vsec_same_server")
}

// BenchmarkFigure4 regenerates Figure 4 (centralized vs distributed single
// objects) at 4 server processors.
func BenchmarkFigure4(b *testing.B) {
	var last bench.Fig4Point
	for i := 0; i < b.N; i++ {
		last = bench.Figure4([]int{4})[0]
	}
	b.ReportMetric(last.Centralized, "vsec_centralized")
	b.ReportMetric(last.Distributed, "vsec_distributed")
	b.ReportMetric(last.Difference, "vsec_difference")
}

// BenchmarkFigure5 regenerates Figure 5 (the pipelined metaapplication) at
// 4 processors per component.
func BenchmarkFigure5(b *testing.B) {
	var last bench.Fig5Point
	for i := 0; i < b.N; i++ {
		last = bench.Figure5([]int{4})[0]
	}
	b.ReportMetric(last.Overall, "vsec_overall")
	b.ReportMetric(last.Diffusion, "vsec_diffusion")
	b.ReportMetric(last.Gradient, "vsec_gradient")
}

// BenchmarkAblationParallelTransfer compares direct thread-to-thread
// argument transfer with the funneled baseline.
func BenchmarkAblationParallelTransfer(b *testing.B) {
	var pts []bench.AblationPoint
	for i := 0; i < b.N; i++ {
		pts = bench.AblationParallelTransfer(250_000)
	}
	b.ReportMetric(pts[0].Seconds, "vsec_direct")
	b.ReportMetric(pts[1].Seconds, "vsec_funneled")
}

// BenchmarkAblationLocalShortcut compares co-located and remote invocation.
func BenchmarkAblationLocalShortcut(b *testing.B) {
	var pts []bench.AblationPoint
	for i := 0; i < b.N; i++ {
		pts = bench.AblationLocalShortcut(100_000)
	}
	b.ReportMetric(pts[0].Seconds, "vsec_colocated")
	b.ReportMetric(pts[1].Seconds, "vsec_remote")
}

// BenchmarkAblationNonBlocking compares overlapped and sequential solver
// invocations.
func BenchmarkAblationNonBlocking(b *testing.B) {
	var pts []bench.AblationPoint
	for i := 0; i < b.N; i++ {
		pts = bench.AblationNonBlocking(400)
	}
	b.ReportMetric(pts[0].Seconds, "vsec_overlap")
	b.ReportMetric(pts[1].Seconds, "vsec_blocking")
}

// BenchmarkAblationOneway compares the two-way and oneway pipelines.
func BenchmarkAblationOneway(b *testing.B) {
	var pts []bench.AblationPoint
	for i := 0; i < b.N; i++ {
		pts = bench.AblationOneway(4)
	}
	b.ReportMetric(pts[0].Seconds, "vsec_twoway")
	b.ReportMetric(pts[1].Seconds, "vsec_oneway")
}

// BenchmarkAblationCommThreads runs the paper's §6 future-work experiment:
// the Figure 5 pipeline with dedicated communication threads doing the
// sending.
func BenchmarkAblationCommThreads(b *testing.B) {
	var pts []bench.AblationPoint
	for i := 0; i < b.N; i++ {
		pts = bench.AblationCommThreads(8)
	}
	b.ReportMetric(pts[0].Seconds, "vsec_single_threaded")
	b.ReportMetric(pts[1].Seconds, "vsec_comm_threads")
}

// BenchmarkAblationRedistribution measures template-to-template
// redistribution in modeled time.
func BenchmarkAblationRedistribution(b *testing.B) {
	var pts []bench.AblationPoint
	for i := 0; i < b.N; i++ {
		pts = bench.AblationRedistribution(500_000)
	}
	for _, p := range pts {
		_ = p
	}
	b.ReportMetric(pts[1].Seconds, "vsec_block_to_cyclic")
	b.ReportMetric(pts[3].Seconds, "vsec_collapsed_to_block")
}

// --- Real-time micro-benchmarks ---------------------------------------------

// BenchmarkMarshalNested measures compiler-style marshaling of the paper's
// matrix type (a sequence of dynamically-sized rows of doubles).
func BenchmarkMarshalNested(b *testing.B) {
	rowTC := typecode.SequenceOf(typecode.TCDouble, 0)
	matTC := typecode.SequenceOf(rowTC, 0)
	rows := make([]any, 64)
	for i := range rows {
		r := make([]float64, 64)
		rows[i] = r
	}
	b.SetBytes(64 * 64 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := cdr.NewEncoder(64 * 64 * 8)
		if err := typecode.Marshal(e, matTC, rows); err != nil {
			b.Fatal(err)
		}
		if _, err := typecode.Unmarshal(cdr.NewDecoder(e.Bytes()), matTC); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCDRDoubles measures the bulk double fast path.
func BenchmarkCDRDoubles(b *testing.B) {
	v := make([]float64, 8192)
	b.SetBytes(8192 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := cdr.NewEncoder(8192 * 8)
		e.PutDoubles(v)
		if got := cdr.NewDecoder(e.Bytes()).GetDoubles(); len(got) != 8192 {
			b.Fatal("bad length")
		}
	}
}

// BenchmarkFutureResolveGet measures future mint/resolve/read overhead.
func BenchmarkFutureResolveGet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := future.NewCell()
		f := future.Of[int](c, 0)
		c.Resolve([]any{i}, nil)
		if v, _ := f.Get(); v != i {
			b.Fatal("bad value")
		}
	}
}

// BenchmarkDSeqRedistribute measures a real block->cyclic redistribution
// over 4 chan-backend threads.
func BenchmarkDSeqRedistribute(b *testing.B) {
	const n = 100_000
	b.SetBytes(n * 8)
	for i := 0; i < b.N; i++ {
		rts.NewChanGroup("bench", 4).Run(func(th rts.Thread) {
			s := dseq.New[float64](th, n, dist.BlockTemplate(), dseq.Float64Codec{})
			s.Redistribute(dist.CyclicTemplate())
		})
	}
}

// BenchmarkScheduleCache measures building a block->cyclic transfer plan
// against hitting the schedule cache with the same shape.
func BenchmarkScheduleCache(b *testing.B) {
	src := dist.BlockTemplate().Layout(250_000, 8)
	dst := dist.CyclicTemplate().Layout(250_000, 8)
	b.Run("miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist.NewSchedule(src, dst)
		}
	})
	b.Run("hit", func(b *testing.B) {
		cache := dist.NewScheduleCache(16)
		cache.Get(src, dst)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache.Get(src, dst)
		}
	})
}

// BenchmarkSegmentFanout measures the wall-clock invocation time of the
// 1-client/8-server transfer shape, serial versus the 4-worker fan-out.
func BenchmarkSegmentFanout(b *testing.B) {
	var pts []bench.TransferPoint
	for i := 0; i < b.N; i++ {
		pts = bench.TransferFanout(250_000, 5)
	}
	b.ReportMetric(pts[0].Seconds, "sec_serial")
	b.ReportMetric(pts[1].Seconds, "sec_4workers")
}

// BenchmarkSingleDispatchPipelined measures many-client throughput on one
// single object with and without the POA dispatch pool.
func BenchmarkSingleDispatchPipelined(b *testing.B) {
	var pts []bench.TransferPoint
	for i := 0; i < b.N; i++ {
		pts = bench.TransferSingleDispatch(8, 50)
	}
	b.ReportMetric(pts[0].PerSec, "ops_serial")
	b.ReportMetric(pts[1].PerSec, "ops_4workers")
}

// orbPair wires a single-object echo server and a client over a fabric.
func orbPair(b *testing.B, clientEP, serverEP nexus.Endpoint) (*core.Binding, func()) {
	b.Helper()
	iface := &core.InterfaceDef{
		Name: "echo",
		Ops: []core.Operation{{
			Name: "echo",
			Params: []core.Param{
				core.NewParam("x", core.In, typecode.SequenceOf(typecode.TCOctet, 0)),
				core.NewParam("y", core.Out, typecode.SequenceOf(typecode.TCOctet, 0)),
			},
		}},
	}
	var wg sync.WaitGroup
	wg.Add(1)
	iorCh := make(chan core.IOR, 1)
	go func() {
		defer wg.Done()
		th := rts.NewChanGroup("srv", 1).Thread(0)
		adapter := poa.New(th, core.NewRouter(serverEP), nil)
		adapter.PollInterval = 20e-6
		ior, err := adapter.RegisterSingle("echo-1", iface, poa.ServantFunc(
			func(_ *poa.Context, _ string, in []any) (any, []any, error) {
				return nil, []any{in[0]}, nil
			}))
		if err != nil {
			b.Error(err)
			return
		}
		iorCh <- ior
		adapter.ImplIsReady()
	}()
	orb := core.NewORB(core.NewRouter(clientEP), nil, nil)
	bind, err := orb.Bind(<-iorCh, iface)
	if err != nil {
		b.Fatal(err)
	}
	return bind, func() {
		bind.Shutdown("bench done")
		wg.Wait()
	}
}

func benchRoundTrip(b *testing.B, bind *core.Binding, payload int) {
	x := make([]byte, payload)
	b.SetBytes(int64(payload))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals, err := bind.Invoke("echo", []any{x, nil})
		if err != nil {
			b.Fatal(err)
		}
		if len(vals[0].([]byte)) != payload {
			b.Fatal("bad echo")
		}
	}
}

// BenchmarkORBRoundTripInproc measures a full marshaled request/reply over
// the in-process fabric.
func BenchmarkORBRoundTripInproc(b *testing.B) {
	for _, payload := range []int{64, 65536} {
		b.Run(fmt.Sprintf("payload%d", payload), func(b *testing.B) {
			fab := nexus.NewInproc()
			bind, stop := orbPair(b, fab.NewEndpoint("cli"), fab.NewEndpoint("srv"))
			defer stop()
			benchRoundTrip(b, bind, payload)
		})
	}
}

// BenchmarkORBRoundTripTCP measures a full request/reply over loopback TCP.
func BenchmarkORBRoundTripTCP(b *testing.B) {
	for _, payload := range []int{64, 65536} {
		b.Run(fmt.Sprintf("payload%d", payload), func(b *testing.B) {
			cep, err := nexus.NewTCPEndpoint("")
			if err != nil {
				b.Fatal(err)
			}
			sep, err := nexus.NewTCPEndpoint("")
			if err != nil {
				b.Fatal(err)
			}
			bind, stop := orbPair(b, cep, sep)
			defer stop()
			benchRoundTrip(b, bind, payload)
		})
	}
}

// BenchmarkLocalBypass measures the co-located direct-call shortcut against
// the marshaled path (see BenchmarkORBRoundTripInproc for the contrast).
func BenchmarkLocalBypass(b *testing.B) {
	fab := nexus.NewInproc()
	table := core.NewLocalTable()
	iface := &core.InterfaceDef{
		Name: "echo",
		Ops: []core.Operation{{
			Name: "echo",
			Params: []core.Param{
				core.NewParam("x", core.In, typecode.SequenceOf(typecode.TCOctet, 0)),
				core.NewParam("y", core.Out, typecode.SequenceOf(typecode.TCOctet, 0)),
			},
		}},
	}
	var wg sync.WaitGroup
	wg.Add(1)
	iorCh := make(chan core.IOR, 1)
	go func() {
		defer wg.Done()
		th := rts.NewChanGroup("srv", 1).Thread(0)
		adapter := poa.New(th, core.NewRouter(fab.NewEndpoint("srv")), table)
		adapter.PollInterval = 20e-6
		ior, _ := adapter.RegisterSingle("echo-1", iface, poa.ServantFunc(
			func(_ *poa.Context, _ string, in []any) (any, []any, error) {
				return nil, []any{in[0]}, nil
			}))
		iorCh <- ior
		adapter.ImplIsReady()
	}()
	orb := core.NewORB(core.NewRouter(fab.NewEndpoint("cli")), nil, table)
	bind, err := orb.Bind(<-iorCh, iface)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		bind.Shutdown("done")
		wg.Wait()
	}()
	x := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bind.Invoke("echo", []any{x, nil}); err != nil {
			b.Fatal(err)
		}
	}
}
