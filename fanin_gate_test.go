// Connection-scale gate: the multiplexed transport must carry ten thousand
// concurrent clients into one 4-rank SPMD server over a handful of sockets,
// and each client's connection must cost at least 10x less resident memory
// than the one-socket-per-client baseline. Runs the real bench harness, so
// a regression in the transport's sharing shows up here, not just in the
// figure's numbers.
package pardis_test

import (
	"testing"

	"pardis/internal/bench"
)

func TestFaninGate(t *testing.T) {
	if raceEnabled {
		t.Skip("memory and throughput measurements are not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("drives 10k real TCP clients; skipped with -short")
	}
	const clients = 10_000
	const baseline = 256
	pts := bench.Fanin([]int{clients}, baseline)
	var mux, perConn *bench.FaninPoint
	for i := range pts {
		switch pts[i].Mode {
		case "mux":
			mux = &pts[i]
		case "per-conn":
			perConn = &pts[i]
		}
	}
	if mux == nil || perConn == nil {
		t.Fatalf("bench returned %+v, want a mux and a per-conn point", pts)
	}
	t.Logf("mux: %d clients, %.0f req/s, %.0f B/client over %d connections; per-conn: %d clients, %.0f B/client",
		mux.Clients, mux.ReqPerSec, mux.BytesPerClient, mux.Conns, perConn.Clients, perConn.BytesPerClient)

	if mux.Clients < clients {
		t.Errorf("mux point served %d clients, want %d", mux.Clients, clients)
	}
	// Sharing must actually happen: thousands of clients over at most the
	// worker-count sockets (plus the server's own inter-rank link).
	if mux.Conns > 80 {
		t.Errorf("mux run used %d physical connections for %d clients — transport is not multiplexing", mux.Conns, mux.Clients)
	}
	if perConn.Conns < baseline {
		t.Errorf("baseline used %d connections for %d clients, want one each", perConn.Conns, baseline)
	}
	if mux.BytesPerClient <= 0 {
		t.Fatalf("mux resident bytes per client = %.0f, measurement broken", mux.BytesPerClient)
	}
	if ratio := perConn.BytesPerClient / mux.BytesPerClient; ratio < 10 {
		t.Errorf("per-connection resident bytes ratio = %.1fx (baseline %.0f B / mux %.0f B), want >= 10x",
			ratio, perConn.BytesPerClient, mux.BytesPerClient)
	}
}
