// Package pardis is a Go reproduction of PARDIS, the CORBA-based
// architecture for application-level parallel distributed computation of
// Keahey and Gannon (SC'97).
//
// PARDIS extends the CORBA object model with SPMD objects — objects
// implemented by the cooperating computing threads of a data-parallel
// program — and distributed sequences, argument structures spread over
// those threads' address spaces that the ORB transfers directly, in
// parallel, between client and server. Non-blocking invocations return
// futures, letting metaapplications overlap their components.
//
// This root package re-exports the user-facing surface; the implementation
// lives in the internal packages:
//
//	internal/core     — the ORB: bindings, invocation, IORs, futures plumbing
//	internal/poa      — the server-side adapter (ImplIsReady, ProcessRequests)
//	internal/dseq     — distributed sequences
//	internal/dist     — distribution templates and transfer schedules
//	internal/future   — futures
//	internal/idl      — the extended-IDL compiler front end
//	internal/idlgen   — the Go stub/skeleton generator
//	internal/rts      — the minimal run-time-system interface + backends
//	internal/nexus    — the transport (in-process, TCP, simulated)
//	internal/registry — object/implementation repositories and activation
//	internal/pooma    — mini-POOMA fields (package mapping target)
//	internal/pstl     — mini HPC++ PSTL vectors (package mapping target)
//	internal/bench    — the paper's evaluation, regenerated
//
// See the runnable programs under examples/ — quickstart, and one per
// scenario of the paper's §4 — and cmd/pardis-idl, cmd/pardis-bench,
// cmd/pardis-reg, cmd/pardis-demo.
package pardis

import (
	"pardis/internal/core"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/future"
	"pardis/internal/nexus"
	"pardis/internal/poa"
	"pardis/internal/rts"
)

// Client-side surface.
type (
	// ORB is a computing thread's client-side Object Request Broker.
	ORB = core.ORB
	// Binding connects a proxy to an object implementation.
	Binding = core.Binding
	// IOR is an interoperable object reference.
	IOR = core.IOR
	// InterfaceDef is the runtime operation table of an IDL interface.
	InterfaceDef = core.InterfaceDef
	// Operation describes one IDL operation.
	Operation = core.Operation
	// Param describes one operation parameter.
	Param = core.Param
	// Router demultiplexes an endpoint between client and server roles.
	Router = core.Router
	// LocalTable enables the co-located direct-call shortcut.
	LocalTable = core.LocalTable
)

// Server-side surface.
type (
	// POA is the server-side object adapter.
	POA = poa.POA
	// Servant is an object implementation.
	Servant = poa.Servant
	// ServantFunc adapts a function to Servant.
	ServantFunc = poa.ServantFunc
	// ServantContext is passed to servant invocations.
	ServantContext = poa.Context
)

// Data surface.
type (
	// Cell is the shared resolution state of a non-blocking invocation.
	Cell = future.Cell
	// Distributed is the ORB's untyped view of a distributed sequence.
	Distributed = dseq.Distributed
	// Template is a distribution recipe.
	Template = dist.Template
	// Layout is a template applied to a length and thread count.
	Layout = dist.Layout
	// Thread is a computing thread's run-time-system context.
	Thread = rts.Thread
	// Endpoint is a transport port.
	Endpoint = nexus.Endpoint
)

// NewORB creates the client-side ORB state for one computing thread; comm
// is nil for single (non-SPMD) clients.
func NewORB(r *Router, comm rts.Comm, table *LocalTable) *ORB {
	return core.NewORB(r, comm, table)
}

// NewRouter wraps a transport endpoint for use by an ORB and/or a POA.
func NewRouter(ep Endpoint) *Router { return core.NewRouter(ep) }

// NewPOA creates a server-side adapter for one computing thread.
func NewPOA(th Thread, r *Router, table *LocalTable) *POA { return poa.New(th, r, table) }

// NewInproc creates an in-process transport fabric.
func NewInproc() *nexus.Inproc { return nexus.NewInproc() }

// NewTCPEndpoint creates a TCP transport endpoint ("" picks a free
// loopback port).
func NewTCPEndpoint(listen string) (Endpoint, error) { return nexus.NewTCPEndpoint(listen) }

// NewChanGroup creates the real-time run-time-system state for a parallel
// program of n computing threads.
func NewChanGroup(host string, n int) *rts.ChanGroup { return rts.NewChanGroup(host, n) }

// Block, Cyclic, Collapsed and Proportions build distribution templates.
func Block() Template                         { return dist.BlockTemplate() }
func Cyclic() Template                        { return dist.CyclicTemplate() }
func Collapsed(root int) Template             { return dist.CollapsedOn(root) }
func Proportions(weights ...float64) Template { return dist.Proportions(weights...) }
func ParseIOR(s string) (IOR, error)          { return core.ParseIOR(s) }
