// Observability-plane gate: the obs figure's retention cell re-runs
// in-process and the flight recorder's contract is asserted — under a mixed
// load whose interesting subset (designated errors and designated-slow
// invocations) is at most ~5%, at least 95% of the interesting traces must
// be retained, the boring bulk must recycle rather than accumulate, and the
// retained set must stay within its configured bound.
package pardis_test

import (
	"testing"

	"pardis/internal/bench"
)

func TestObsPlaneGate(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-load run takes seconds; skipped with -short")
	}
	pts := bench.FigureObs(true)
	var ret *bench.ObsPoint
	overhead := map[string]bool{}
	for i, pt := range pts {
		switch pt.Cell {
		case "retention":
			ret = &pts[i]
			t.Logf("retention: interesting=%d/%d recall=%.3f boring_retained=%d retained=%d/%d recycled=%d",
				pt.Interesting, pt.Invocations, pt.Recall, pt.BoringRetained,
				pt.RetainedCount, pt.RetainedBound, pt.Recycled)
		case "overhead":
			overhead[pt.Mode] = true
			t.Logf("overhead: mode=%s interesting=%.0f%% %0.f ns/op",
				pt.Mode, pt.InterestingFrac*100, pt.NsPerOp)
		case "scrape":
			if pt.ScrapeNs <= 0 || pt.PageBytes <= 0 {
				t.Errorf("scrape cell degenerate: %+v", pt)
			}
		}
	}
	for _, mode := range []string{"off", "ring", "recorder"} {
		if !overhead[mode] {
			t.Errorf("obs figure missing overhead mode %q", mode)
		}
	}
	if ret == nil {
		t.Fatal("obs figure produced no retention cell")
	}

	// The load must actually be the shape the recorder is promised to
	// handle: mostly boring, a thin interesting tail.
	if ret.Interesting == 0 {
		t.Fatal("retention cell designated no interesting invocations — gate is vacuous")
	}
	if frac := float64(ret.Interesting) / float64(ret.Invocations); frac > 0.05 {
		t.Fatalf("interesting fraction %.3f > 0.05: cell mis-shaped", frac)
	}

	// The recorder's contract.
	if ret.Recall < 0.95 {
		t.Errorf("recall %.3f, want >= 0.95: the recorder is losing interesting traces", ret.Recall)
	}
	if ret.RetainedCount > ret.RetainedBound {
		t.Errorf("retained %d traces, bound %d: the retained set is not bounded",
			ret.RetainedCount, ret.RetainedBound)
	}
	// Boring traces must recycle. A scheduler stall can push the odd fast
	// invocation over the fixed slow threshold, so allow 1% of the boring
	// bulk, but the steady state is zero.
	if limit := max(1, ret.Boring/100); ret.BoringRetained > limit {
		t.Errorf("boring retained = %d (of %d boring), want <= %d: boring traces are not recycling",
			ret.BoringRetained, ret.Boring, limit)
	}
	if ret.Recycled == 0 {
		t.Error("recycled = 0: the buffer pool never turned over")
	}
}
